/**
 * @file
 * Unit tests for the synthetic workload generator and profiles.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/log.hh"
#include "mapping/page_mapper.hh"
#include "trace/workload.hh"

namespace c3d
{
namespace
{

TEST(WorkloadProfile, AllNamedProfilesExist)
{
    const auto profiles = parallelProfiles();
    ASSERT_EQ(profiles.size(), 9u);
    const std::set<std::string> names = {
        "facesim", "streamcluster", "freqmine", "fluidanimate",
        "canneal", "tunkrank", "nutch", "cassandra", "classification"};
    std::set<std::string> got;
    for (const auto &p : profiles)
        got.insert(p.name);
    EXPECT_EQ(got, names);
}

TEST(WorkloadProfile, LookupByName)
{
    EXPECT_EQ(profileByName("canneal").name, "canneal");
    EXPECT_EQ(profileByName("mcf").name, "mcf");
    EXPECT_TRUE(profileByName("mcf").singleThreaded);
}

TEST(WorkloadProfile, PaperWorkingSetsAreLarge)
{
    // §V: paper selects PARSEC benchmarks with working sets over
    // 100 MB in native input.
    for (const auto &p : parallelProfiles()) {
        const std::uint64_t ws = p.sharedHotBytes + p.sharedColdBytes +
            p.streamBytes + p.migratoryBytes +
            32 * p.privateBytesPerThread;
        EXPECT_GT(ws, 100ull << 20) << p.name;
    }
}

TEST(WorkloadProfile, ScalingShrinksFootprints)
{
    WorkloadProfile p = cannealProfile();
    WorkloadProfile s = p.scaled(32);
    EXPECT_EQ(s.sharedColdBytes, p.sharedColdBytes / 32);
    EXPECT_EQ(s.privateBytesPerThread, p.privateBytesPerThread / 32);
    // Access mix is scale-invariant.
    EXPECT_EQ(s.fracSharedHot, p.fracSharedHot);
    EXPECT_EQ(s.writeFracShared, p.writeFracShared);
}

TEST(WorkloadProfile, ScalingFloorsAtOnePage)
{
    WorkloadProfile p;
    p.migratoryBytes = 8192;
    WorkloadProfile s = p.scaled(1024);
    EXPECT_EQ(s.migratoryBytes, PageBytes);
}

TEST(SyntheticWorkload, Deterministic)
{
    WorkloadProfile p = facesimProfile().scaled(64);
    SyntheticWorkload a(p, 8, 2), b(p, 8, 2);
    for (int i = 0; i < 5000; ++i) {
        for (CoreId c = 0; c < 8; ++c) {
            const TraceOp oa = a.next(c);
            const TraceOp ob = b.next(c);
            EXPECT_EQ(oa.addr, ob.addr);
            EXPECT_EQ(oa.op, ob.op);
            EXPECT_EQ(oa.gap, ob.gap);
        }
    }
}

TEST(SyntheticWorkload, CoresDiffer)
{
    WorkloadProfile p = facesimProfile().scaled(64);
    SyntheticWorkload wl(p, 4, 2);
    int same = 0;
    for (int i = 0; i < 200; ++i) {
        const TraceOp a = wl.next(0);
        const TraceOp b = wl.next(1);
        same += a.addr == b.addr;
    }
    EXPECT_LT(same, 20);
}

TEST(SyntheticWorkload, AddressesWithinFootprint)
{
    WorkloadProfile p = nutchProfile().scaled(64);
    SyntheticWorkload wl(p, 8, 2);
    const std::uint64_t footprint = wl.footprintBytes();
    for (int i = 0; i < 20000; ++i) {
        for (CoreId c = 0; c < 8; ++c) {
            const TraceOp op = wl.next(c);
            EXPECT_LT(op.addr, footprint + PageBytes);
        }
    }
}

TEST(SyntheticWorkload, WriteFractionRoughlyMatchesProfile)
{
    WorkloadProfile p;
    p.name = "wf";
    p.sharedHotBytes = 1 << 20;
    p.sharedColdBytes = 0;
    p.migratoryBytes = 0;
    p.privateBytesPerThread = 1 << 20;
    p.fracSharedHot = 0.5;
    p.fracSharedCold = 0;
    p.fracMigratory = 0;
    p.writeFracShared = 0.2;
    p.writeFracPrivate = 0.2;
    p.writeFracPrivateCold = 0.2;
    SyntheticWorkload wl(p, 2, 1);
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        writes += wl.next(0).op == MemOp::Write;
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.2, 0.02);
}

TEST(SyntheticWorkload, MigratoryIsReadThenWrite)
{
    WorkloadProfile p;
    p.name = "migr";
    p.sharedHotBytes = 0;
    p.sharedColdBytes = 0;
    p.migratoryBytes = 1 << 20;
    p.privateBytesPerThread = PageBytes;
    p.fracSharedHot = 0;
    p.fracSharedCold = 0;
    p.fracMigratory = 1.0;
    SyntheticWorkload wl(p, 2, 1);
    for (int i = 0; i < 1000; ++i) {
        const TraceOp rd = wl.next(0);
        ASSERT_EQ(rd.op, MemOp::Read);
        const TraceOp wr = wl.next(0);
        ASSERT_EQ(wr.op, MemOp::Write);
        ASSERT_EQ(rd.addr, wr.addr);
    }
}

TEST(SyntheticWorkload, StreamSweepsSequentially)
{
    WorkloadProfile p;
    p.name = "stream";
    p.sharedHotBytes = 0;
    p.sharedColdBytes = 0;
    p.migratoryBytes = 0;
    p.privateBytesPerThread = PageBytes;
    p.streamBytes = 1 << 20;
    p.streamSegmentBytes = 64 * 1024;
    p.fracSharedHot = 0;
    p.fracSharedCold = 0;
    p.fracMigratory = 0;
    p.fracStream = 1.0;
    SyntheticWorkload wl(p, 2, 1);
    Addr prev = wl.next(0).addr;
    for (int i = 1; i < 500; ++i) {
        const Addr cur = wl.next(0).addr;
        if (cur != prev + BlockBytes) {
            // Segment boundary: jump to another segment start.
            EXPECT_EQ(cur % (64 * 1024), 0u);
        }
        prev = cur;
    }
}

TEST(SyntheticWorkload, SingleThreadedUsesOneCore)
{
    WorkloadProfile p = mcfProfile().scaled(64);
    SyntheticWorkload wl(p, 32, 8);
    EXPECT_EQ(wl.activeCores(32), 1u);
    EXPECT_EQ(wl.barrierInterval(), 0u);
}

TEST(SyntheticWorkload, PrivateRegionsAreDisjoint)
{
    WorkloadProfile p;
    p.name = "priv";
    p.sharedHotBytes = 0;
    p.sharedColdBytes = 0;
    p.migratoryBytes = 0;
    p.privateBytesPerThread = 1 << 20;
    p.fracSharedHot = 0;
    p.fracSharedCold = 0;
    p.fracMigratory = 0;
    SyntheticWorkload wl(p, 4, 2);
    std::map<CoreId, std::pair<Addr, Addr>> ranges;
    for (CoreId c = 0; c < 4; ++c) {
        Addr lo = ~Addr(0), hi = 0;
        for (int i = 0; i < 5000; ++i) {
            const Addr a = wl.next(c).addr;
            lo = std::min(lo, a);
            hi = std::max(hi, a);
        }
        ranges[c] = {lo, hi};
    }
    for (CoreId c = 0; c + 1 < 4; ++c)
        EXPECT_LT(ranges[c].second, ranges[c + 1].first);
}

TEST(SyntheticWorkload, PreTouchPinsSharedPagesUnderFT1)
{
    StatGroup g("t");
    WorkloadProfile p = facesimProfile().scaled(256);
    SyntheticWorkload wl(p, 4, 2);
    PageMapper m(MappingPolicy::FirstTouch1, 2, &g);
    wl.preTouchPages(m);
    EXPECT_GT(m.mappedPages(), 0u);
    // All pre-touched pages homed at socket 0 (the FT1 pathology).
    EXPECT_EQ(m.pagesAt(0), m.mappedPages());
    EXPECT_EQ(m.pagesAt(1), 0u);
}

TEST(SyntheticWorkload, BarrierIntervalFromProfile)
{
    WorkloadProfile p = facesimProfile();
    p.barrierOps = 1234;
    SyntheticWorkload wl(p, 4, 2);
    EXPECT_EQ(wl.barrierInterval(), 1234u);
}

} // namespace
} // namespace c3d
