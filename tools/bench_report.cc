/**
 * @file
 * Perf-regression report: measures the simulator's hot-path
 * primitives plus one fixed end-to-end sweep row and emits a
 * machine-readable BENCH.json so CI can track the throughput
 * trajectory across PRs (the committed BENCH_PR3.json is the PR-3
 * era snapshot of this report).
 *
 * Sections:
 *  - event_queue: the BM_EventQueueScheduleRun workload (1024 events,
 *    small mixed delays) on the production kernel AND on an embedded
 *    replica of the pre-PR kernel (std::function callbacks in a
 *    std::priority_queue). Both run on the same machine in the same
 *    process, so speedup_vs_pre_pr is a live apples-to-apples ratio,
 *    not a stale constant. Same-tick bursts and far-future (wheel
 *    overflow) variants are reported alongside.
 *  - tag_array: ns per lookup, per allocate, and per always-evicting
 *    allocate.
 *  - end_to_end: one fixed sweep row (facesim / C3D / 4 sockets),
 *    reporting wall time, simulated events, and host events/second.
 *  - parallel_kernel: the same row run on the multi-queue kernel
 *    with 1 worker thread (the sequential differential oracle) and
 *    with one thread per socket (--parallel-kernel), reporting both
 *    throughputs, the speedup, and the host's hardware concurrency.
 *    The tool exits non-zero if the two runs' metrics diverge (the
 *    byte-identity contract, checked live). The speedup is only
 *    meaningful when the host has >= numSockets hardware threads --
 *    host_hw_threads records the truth next to the number.
 *  - robustness: the same row with the progress watchdog disarmed
 *    vs armed at the sweep CLI's defaults, reporting both
 *    throughputs and the overhead percentage (guarded at < 2% in
 *    full mode -- the watchdog is designed to be a branch and a
 *    counter per event; quick mode reports without failing, since
 *    its runs are too short to measure 2% reliably). Alongside, an
 *    in-process fault-containment check: a two-point sweep with a
 *    panic injected into one row under --fail-policy=skip must
 *    contain exactly that failure and leave the surviving row
 *    identical to a clean run's (exit non-zero otherwise).
 *  - predictors: the admission-gate matrix (facesim and canneal on
 *    the C3D design under both --predictors kinds), reporting the
 *    DRAM-cache hit rate and IPC side by side with the training
 *    counters, so a regression in either gate shows up in the
 *    report with the counters that explain it (docs/predictors.md).
 *
 * The tool exits non-zero if any scheduled callback fell back to a
 * heap allocation during the end-to-end row: the simulator's capture
 * sizes are part of the perf contract (docs/perf.md).
 *
 * Usage: bench-report [--quick] [--out=PATH|-]
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "cache/tag_array.hh"
#include "common/rng.hh"
#include "exp/sweep_engine.hh"
#include "exp/sweep_grid.hh"
#include "sim/event_queue.hh"
#include "sim/fault_injector.hh"
#include "sim/runner.hh"
#include "sim/watchdog.hh"
#include "trace/workload.hh"

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Replica of the pre-PR event kernel: heap-allocating std::function
 * callbacks ordered by a std::priority_queue. Kept here (not in
 * src/) purely as the live baseline for the report.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    c3d::Tick now() const { return currentTick; }

    void
    schedule(c3d::Tick delay, Callback cb)
    {
        queue.push(Event{currentTick + delay, nextSequence++,
                         std::move(cb)});
    }

    void
    run()
    {
        while (!queue.empty()) {
            const Event &top = queue.top();
            currentTick = top.when;
            Callback cb = std::move(const_cast<Event &>(top).cb);
            queue.pop();
            cb();
        }
    }

  private:
    struct Event
    {
        c3d::Tick when;
        std::uint64_t sequence;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };
    std::priority_queue<Event, std::vector<Event>, Later> queue;
    c3d::Tick currentTick = 0;
    std::uint64_t nextSequence = 0;
};

/**
 * Best-of-@p rounds throughput of @p batch (which processes
 * @p items_per_batch items), running @p batches batches per round.
 * Best-of damps scheduler noise; the workload itself is
 * deterministic.
 */
template <typename BatchFn>
double
measureItemsPerSec(int rounds, int batches,
                   std::uint64_t items_per_batch, BatchFn &&batch)
{
    double best = 0.0;
    for (int r = 0; r < rounds; ++r) {
        const auto start = Clock::now();
        for (int i = 0; i < batches; ++i)
            batch();
        const double secs = secondsSince(start);
        const double ips =
            static_cast<double>(items_per_batch) * batches / secs;
        if (ips > best)
            best = ips;
    }
    return best;
}

struct Report
{
    bool quick = false;

    double scheduleRunIps = 0;
    double sameTickIps = 0;
    double farFutureIps = 0;
    double legacyScheduleRunIps = 0;

    double nsPerLookup = 0;
    double nsPerAllocate = 0;
    double nsPerAllocateEvict = 0;

    std::string rowName;
    double rowWallSeconds = 0;
    std::uint64_t rowEvents = 0;
    double rowEventsPerSec = 0;
    double rowIpc = 0;
    std::uint64_t rowHeapCallbackEvents = 0;

    unsigned parKernelThreads = 0;
    unsigned hostHwThreads = 0;
    double seqKernelWallSeconds = 0;
    double seqKernelEventsPerSec = 0;
    double parKernelWallSeconds = 0;
    double parKernelEventsPerSec = 0;
    bool parKernelMetricsMatch = true;

    double wdOffEventsPerSec = 0;
    double wdOnEventsPerSec = 0;
    double wdOverheadPct = 0;
    std::size_t containedFaults = 0;
    bool containmentSurvivorsMatch = true;

    /** One workload x predictor cell of the admission-gate matrix. */
    struct PredictorCell
    {
        std::string workload;
        std::string predictor;
        double hitRate = 0;
        double ipc = 0;
        std::uint64_t trains = 0;
        std::uint64_t bypasses = 0;
        std::uint64_t ghostHits = 0;
        std::uint64_t falsePresent = 0;
    };
    std::vector<PredictorCell> predictorCells;
};

void
benchEventQueues(Report &rep)
{
    const int rounds = rep.quick ? 3 : 5;
    const int batches = rep.quick ? 300 : 3000;
    constexpr int N = 1024;

    // The legacy replica runs first, on a pristine heap, mirroring
    // the conditions the pre-PR kernel was originally measured under.
    {
        LegacyEventQueue eq;
        std::uint64_t sink = 0;
        rep.legacyScheduleRunIps =
            measureItemsPerSec(rounds, batches, N, [&] {
                for (int i = 0; i < N; ++i)
                    eq.schedule(static_cast<c3d::Tick>(i & 7),
                                [&sink] { ++sink; });
                eq.run();
            });
    }
    {
        c3d::EventQueue eq;
        std::uint64_t sink = 0;
        rep.scheduleRunIps = measureItemsPerSec(rounds, batches, N, [&] {
            for (int i = 0; i < N; ++i)
                eq.schedule(static_cast<c3d::Tick>(i & 7),
                            [&sink] { ++sink; });
            eq.run();
        });
    }
    {
        c3d::EventQueue eq;
        std::uint64_t sink = 0;
        rep.sameTickIps = measureItemsPerSec(rounds, batches, N, [&] {
            for (int i = 0; i < N; ++i)
                eq.schedule(3, [&sink] { ++sink; });
            eq.run();
        });
    }
    {
        c3d::EventQueue eq;
        std::uint64_t sink = 0;
        const c3d::Tick far = 4 * c3d::EventQueue::WheelSpan;
        rep.farFutureIps = measureItemsPerSec(rounds, batches, N, [&] {
            for (int i = 0; i < N; ++i)
                eq.schedule(far + static_cast<c3d::Tick>(i & 63),
                            [&sink] { ++sink; });
            eq.run();
        });
    }
}

void
benchTagArray(Report &rep)
{
    const int rounds = rep.quick ? 3 : 5;
    const int ops = rep.quick ? 200000 : 2000000;

    {
        c3d::TagArray tags;
        tags.init(1 << 20, 16);
        c3d::Rng rng(1);
        for (int i = 0; i < 10000; ++i)
            tags.allocate(rng.below(1 << 20), c3d::CacheState::Shared);
        std::uint64_t hits = 0;
        const double ips = measureItemsPerSec(rounds, 1, ops, [&] {
            for (int i = 0; i < ops; ++i)
                hits += tags.find(rng.below(1 << 20)) != nullptr;
        });
        rep.nsPerLookup = 1e9 / ips;
        if (hits == 0)
            std::fprintf(stderr, "warn: no tag hits measured\n");
    }
    {
        c3d::TagArray tags;
        tags.init(1 << 18, 8);
        c3d::Rng rng(2);
        const double ips = measureItemsPerSec(rounds, 1, ops, [&] {
            for (int i = 0; i < ops; ++i)
                tags.allocate(rng.below(1 << 22) * c3d::BlockBytes,
                              c3d::CacheState::Shared);
        });
        rep.nsPerAllocate = 1e9 / ips;
    }
    {
        c3d::TagArray tags;
        tags.init(1 << 18, 8);
        c3d::Addr next = 0;
        for (std::uint64_t i = 0; i < tags.capacityBlocks(); ++i)
            tags.allocate((next++) * c3d::BlockBytes,
                          c3d::CacheState::Shared);
        const double ips = measureItemsPerSec(rounds, 1, ops, [&] {
            for (int i = 0; i < ops; ++i)
                tags.allocate((next++) * c3d::BlockBytes,
                              c3d::CacheState::Shared);
        });
        rep.nsPerAllocateEvict = 1e9 / ips;
    }
}

void
benchEndToEnd(Report &rep)
{
    c3d::exp::SweepGrid grid;
    grid.workloads = {c3d::facesimProfile()};
    grid.designs = {c3d::Design::C3D};
    grid.sockets = {4};
    if (rep.quick)
        grid = c3d::exp::quickPreset(grid);
    const std::vector<c3d::exp::RunSpec> specs = grid.expand();
    const c3d::exp::RunSpec &spec = specs.front();

    rep.rowName = spec.profile.name + "/c3d/" +
        std::to_string(spec.cfg.numSockets) + "skt/scale" +
        std::to_string(spec.scale);

    c3d::SyntheticWorkload wl(spec.profile.scaled(spec.scale),
                              spec.cfg.totalCores(),
                              spec.cfg.coresPerSocket);
    c3d::Runner runner(spec.cfg, wl);
    const auto start = Clock::now();
    const c3d::RunResult res =
        runner.run(spec.warmupOps, spec.measureOps);
    rep.rowWallSeconds = secondsSince(start);
    rep.rowEvents = runner.machine().totalEventsExecuted();
    rep.rowEventsPerSec = rep.rowEvents / rep.rowWallSeconds;
    rep.rowIpc = res.ipc();
    rep.rowHeapCallbackEvents =
        runner.machine().totalHeapCallbackEvents();
}

void
benchParallelKernel(Report &rep)
{
    // Same fixed row as end_to_end, once per kernel. 1 worker thread
    // is the sequential differential oracle; N = numSockets is what
    // --parallel-kernel runs on a big-enough host.
    c3d::exp::SweepGrid grid;
    grid.workloads = {c3d::facesimProfile()};
    grid.designs = {c3d::Design::C3D};
    grid.sockets = {4};
    if (rep.quick)
        grid = c3d::exp::quickPreset(grid);
    const std::vector<c3d::exp::RunSpec> specs = grid.expand();
    const c3d::exp::RunSpec &spec = specs.front();

    rep.hostHwThreads = std::thread::hardware_concurrency();
    rep.parKernelThreads = std::min<unsigned>(
        spec.cfg.numSockets,
        rep.hostHwThreads ? rep.hostHwThreads : 1);

    auto runOnce = [&](c3d::KernelOptions kernel, double &wall,
                       double &eps) {
        c3d::SyntheticWorkload wl(spec.profile.scaled(spec.scale),
                                  spec.cfg.totalCores(),
                                  spec.cfg.coresPerSocket);
        c3d::Runner runner(spec.cfg, wl, kernel);
        const auto start = Clock::now();
        const c3d::RunResult res =
            runner.run(spec.warmupOps, spec.measureOps);
        wall = secondsSince(start);
        eps = static_cast<double>(
                  runner.machine().totalEventsExecuted()) /
            wall;
        return res;
    };

    const c3d::RunResult seq = runOnce(
        c3d::KernelOptions{}, rep.seqKernelWallSeconds,
        rep.seqKernelEventsPerSec);
    c3d::KernelOptions par;
    par.parallel = true;
    par.threads = rep.parKernelThreads;
    const c3d::RunResult parallel = runOnce(
        par, rep.parKernelWallSeconds, rep.parKernelEventsPerSec);

    rep.parKernelMetricsMatch =
        seq.measuredTicks == parallel.measuredTicks &&
        seq.instructions == parallel.instructions &&
        seq.memReads == parallel.memReads &&
        seq.memWrites == parallel.memWrites &&
        seq.dramCacheHits == parallel.dramCacheHits &&
        seq.dramCacheMisses == parallel.dramCacheMisses &&
        seq.llcMisses == parallel.llcMisses &&
        seq.interSocketBytes == parallel.interSocketBytes;
}

void
benchRobustness(Report &rep)
{
    // Watchdog overhead: the end_to_end row with the watchdog
    // disarmed vs armed at the sweep CLI's default (the livelock
    // detector at 2M stalled events). Best-of damps scheduler noise.
    c3d::exp::SweepGrid grid;
    grid.workloads = {c3d::facesimProfile()};
    grid.designs = {c3d::Design::C3D};
    grid.sockets = {4};
    if (rep.quick)
        grid = c3d::exp::quickPreset(grid);
    const std::vector<c3d::exp::RunSpec> specs = grid.expand();
    const c3d::exp::RunSpec &spec = specs.front();
    const int rounds = rep.quick ? 3 : 5;

    auto bestEps = [&](const c3d::RunOptions &opts) {
        double best = 0.0;
        for (int r = 0; r < rounds; ++r) {
            c3d::SyntheticWorkload wl(spec.profile.scaled(spec.scale),
                                      spec.cfg.totalCores(),
                                      spec.cfg.coresPerSocket);
            c3d::Runner runner(spec.cfg, wl, opts);
            const auto start = Clock::now();
            runner.run(spec.warmupOps, spec.measureOps);
            const double eps =
                static_cast<double>(
                    runner.machine().totalEventsExecuted()) /
                secondsSince(start);
            if (eps > best)
                best = eps;
        }
        return best;
    };

    rep.wdOffEventsPerSec = bestEps(c3d::RunOptions{});
    c3d::RunOptions armed;
    armed.watchdog.stallEvents = 2000000;
    rep.wdOnEventsPerSec = bestEps(armed);
    rep.wdOverheadPct =
        100.0 * (1.0 - rep.wdOnEventsPerSec / rep.wdOffEventsPerSec);

    // Fault containment, checked live: a two-point sweep with a
    // panic injected into one row under the skip policy must record
    // exactly that failure and leave the survivor identical to a
    // clean run's row.
    c3d::exp::SweepGrid cgrid;
    cgrid.workloads = {c3d::profileByName("facesim")};
    cgrid.designs = {c3d::Design::Baseline, c3d::Design::C3D};
    cgrid.sockets = {4};
    cgrid.scale = 256;
    cgrid.coresPerSocket = 2;
    cgrid.warmupOps = 300;
    cgrid.measureOps = 1200;

    c3d::exp::SweepEngine clean_engine(1);
    const c3d::exp::ResultTable clean = clean_engine.run(cgrid);

    c3d::exp::SweepEngine engine(2);
    engine.setFailPolicy(c3d::exp::FailPolicy::Skip);
    engine.setFailureSink([&](const c3d::exp::RowFailure &) {
        ++rep.containedFaults;
    });
    const c3d::exp::ResultTable table =
        engine.run(cgrid, [](const c3d::exp::RunSpec &s) {
            c3d::RunOptions o;
            if (s.index == 1) {
                o.fault.kind = c3d::FaultKind::Panic;
                o.fault.at = 0;
            }
            return c3d::exp::SweepEngine::simulateSpec(s, o);
        });

    rep.containmentSurvivorsMatch = rep.containedFaults == 1 &&
        table.rows().size() == 1 && clean.rows().size() == 2 &&
        table.rows()[0].sameAs(clean.rows()[0]);
}

void
benchPredictors(Report &rep)
{
    // The admission-gate matrix (docs/predictors.md): the same
    // workloads on the C3D design under both predictors, reporting
    // DRAM-cache hit rate and IPC side by side so a regression in
    // either gate is visible in the report, next to the counters
    // that explain it (trains/bypasses/ghost hits/false present).
    c3d::exp::SweepGrid grid;
    grid.workloads = {c3d::profileByName("facesim"),
                      c3d::profileByName("canneal")};
    grid.designs = {c3d::Design::C3D};
    grid.predictors = {c3d::PredictorKind::Region,
                       c3d::PredictorKind::Perceptron};
    grid.sockets = {4};
    grid = c3d::exp::quickPreset(std::move(grid));
    if (!rep.quick)
        grid.measureOps = 8000;

    c3d::exp::SweepEngine engine(1);
    const c3d::exp::ResultTable table = engine.run(grid);
    for (const c3d::exp::ResultRow &row : table.rows()) {
        Report::PredictorCell cell;
        cell.workload = row.workload;
        cell.predictor = row.predictor;
        const double accesses = static_cast<double>(
            row.metrics.dramCacheHits + row.metrics.dramCacheMisses);
        cell.hitRate = accesses > 0
            ? row.metrics.dramCacheHits / accesses : 0.0;
        cell.ipc = row.metrics.ipc();
        cell.trains = row.metrics.predictorTrains;
        cell.bypasses = row.metrics.predictorBypasses;
        cell.ghostHits = row.metrics.predictorGhostHits;
        cell.falsePresent = row.metrics.predictorFalsePresent;
        rep.predictorCells.push_back(cell);
    }
}

void
writeJson(std::FILE *f, const Report &rep)
{
    // Pre-PR reference, for context next to the live replica number:
    // BM_EventQueueScheduleRun / BM_TagArrayLookup measured at commit
    // 60bb094 (the kernel this PR replaced) on the PR machine.
    constexpr double prePrGbenchIps = 1.4633534e7;
    constexpr double prePrGbenchNsPerLookup = 34.44;

    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"c3d-bench-report-v1\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", rep.quick ? "true" : "false");
    std::fprintf(f, "  \"event_queue\": {\n");
    std::fprintf(f, "    \"schedule_run_items_per_sec\": %.0f,\n",
                 rep.scheduleRunIps);
    std::fprintf(f, "    \"same_tick_items_per_sec\": %.0f,\n",
                 rep.sameTickIps);
    std::fprintf(f, "    \"far_future_items_per_sec\": %.0f,\n",
                 rep.farFutureIps);
    std::fprintf(f,
                 "    \"pre_pr_kernel_items_per_sec\": %.0f,\n",
                 rep.legacyScheduleRunIps);
    std::fprintf(f, "    \"speedup_vs_pre_pr\": %.2f,\n",
                 rep.scheduleRunIps / rep.legacyScheduleRunIps);
    std::fprintf(f,
                 "    \"pre_pr_gbench_reference_items_per_sec\": "
                 "%.0f\n",
                 prePrGbenchIps);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"tag_array\": {\n");
    std::fprintf(f, "    \"ns_per_lookup\": %.2f,\n", rep.nsPerLookup);
    std::fprintf(f, "    \"ns_per_allocate\": %.2f,\n",
                 rep.nsPerAllocate);
    std::fprintf(f, "    \"ns_per_allocate_evict\": %.2f,\n",
                 rep.nsPerAllocateEvict);
    std::fprintf(f,
                 "    \"pre_pr_gbench_reference_ns_per_lookup\": "
                 "%.2f\n",
                 prePrGbenchNsPerLookup);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"end_to_end\": {\n");
    std::fprintf(f, "    \"row\": \"%s\",\n", rep.rowName.c_str());
    std::fprintf(f, "    \"wall_seconds\": %.3f,\n",
                 rep.rowWallSeconds);
    std::fprintf(f, "    \"events\": %llu,\n",
                 static_cast<unsigned long long>(rep.rowEvents));
    std::fprintf(f, "    \"events_per_sec\": %.0f,\n",
                 rep.rowEventsPerSec);
    std::fprintf(f, "    \"ipc\": %.4f,\n", rep.rowIpc);
    std::fprintf(f, "    \"heap_callback_events\": %llu\n",
                 static_cast<unsigned long long>(
                     rep.rowHeapCallbackEvents));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"parallel_kernel\": {\n");
    std::fprintf(f, "    \"row\": \"%s\",\n", rep.rowName.c_str());
    std::fprintf(f, "    \"host_hw_threads\": %u,\n",
                 rep.hostHwThreads);
    std::fprintf(f, "    \"worker_threads\": %u,\n",
                 rep.parKernelThreads);
    std::fprintf(f, "    \"sequential_wall_seconds\": %.3f,\n",
                 rep.seqKernelWallSeconds);
    std::fprintf(f, "    \"sequential_events_per_sec\": %.0f,\n",
                 rep.seqKernelEventsPerSec);
    std::fprintf(f, "    \"parallel_wall_seconds\": %.3f,\n",
                 rep.parKernelWallSeconds);
    std::fprintf(f, "    \"parallel_events_per_sec\": %.0f,\n",
                 rep.parKernelEventsPerSec);
    std::fprintf(f, "    \"speedup\": %.2f,\n",
                 rep.parKernelWallSeconds > 0
                     ? rep.seqKernelWallSeconds /
                         rep.parKernelWallSeconds
                     : 0.0);
    std::fprintf(f, "    \"metrics_match\": %s\n",
                 rep.parKernelMetricsMatch ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"robustness\": {\n");
    std::fprintf(f, "    \"row\": \"%s\",\n", rep.rowName.c_str());
    std::fprintf(f, "    \"watchdog_off_events_per_sec\": %.0f,\n",
                 rep.wdOffEventsPerSec);
    std::fprintf(f, "    \"watchdog_on_events_per_sec\": %.0f,\n",
                 rep.wdOnEventsPerSec);
    std::fprintf(f, "    \"watchdog_overhead_pct\": %.2f,\n",
                 rep.wdOverheadPct);
    std::fprintf(f, "    \"watchdog_overhead_guard_pct\": 2.0,\n");
    std::fprintf(f, "    \"contained_faults\": %llu,\n",
                 static_cast<unsigned long long>(rep.containedFaults));
    std::fprintf(f, "    \"survivors_match_clean_run\": %s\n",
                 rep.containmentSurvivorsMatch ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"predictors\": [\n");
    for (std::size_t i = 0; i < rep.predictorCells.size(); ++i) {
        const Report::PredictorCell &c = rep.predictorCells[i];
        std::fprintf(f, "    {\"workload\": \"%s\", ",
                     c.workload.c_str());
        std::fprintf(f, "\"predictor\": \"%s\", ",
                     c.predictor.c_str());
        std::fprintf(f, "\"dram_cache_hit_rate\": %.4f, ", c.hitRate);
        std::fprintf(f, "\"ipc\": %.4f, ", c.ipc);
        std::fprintf(f, "\"trains\": %llu, ",
                     static_cast<unsigned long long>(c.trains));
        std::fprintf(f, "\"bypasses\": %llu, ",
                     static_cast<unsigned long long>(c.bypasses));
        std::fprintf(f, "\"ghost_hits\": %llu, ",
                     static_cast<unsigned long long>(c.ghostHits));
        std::fprintf(f, "\"false_present\": %llu}%s\n",
                     static_cast<unsigned long long>(c.falsePresent),
                     i + 1 < rep.predictorCells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Report rep;
    std::string out = "BENCH.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            rep.quick = true;
        } else if (arg.rfind("--out=", 0) == 0) {
            out = arg.substr(6);
        } else {
            std::fprintf(stderr,
                         "usage: bench-report [--quick] "
                         "[--out=PATH|-]\n");
            return 2;
        }
    }

    benchEventQueues(rep);
    benchTagArray(rep);
    benchEndToEnd(rep);
    benchParallelKernel(rep);
    benchRobustness(rep);
    benchPredictors(rep);

    if (out == "-") {
        writeJson(stdout, rep);
    } else {
        std::FILE *f = std::fopen(out.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "bench-report: cannot write %s\n",
                         out.c_str());
            return 2;
        }
        writeJson(f, rep);
        std::fclose(f);
    }

    std::fprintf(stderr,
                 "event queue: %.1fM items/s (pre-PR kernel %.1fM, "
                 "%.2fx); tag lookup %.1f ns; row %s in %.2fs "
                 "(%.1fM events/s)\n",
                 rep.scheduleRunIps / 1e6,
                 rep.legacyScheduleRunIps / 1e6,
                 rep.scheduleRunIps / rep.legacyScheduleRunIps,
                 rep.nsPerLookup, rep.rowName.c_str(),
                 rep.rowWallSeconds, rep.rowEventsPerSec / 1e6);

    std::fprintf(stderr,
                 "parallel kernel: %.2fx on %u threads "
                 "(host has %u hw threads; metrics %s)\n",
                 rep.parKernelWallSeconds > 0
                     ? rep.seqKernelWallSeconds /
                         rep.parKernelWallSeconds
                     : 0.0,
                 rep.parKernelThreads, rep.hostHwThreads,
                 rep.parKernelMetricsMatch ? "match" : "DIVERGE");

    for (const Report::PredictorCell &c : rep.predictorCells) {
        std::fprintf(stderr,
                     "predictor %s/%s: hit rate %.3f, ipc %.4f "
                     "(%llu trains, %llu bypasses, %llu ghost hits, "
                     "%llu false present)\n",
                     c.workload.c_str(), c.predictor.c_str(),
                     c.hitRate, c.ipc,
                     static_cast<unsigned long long>(c.trains),
                     static_cast<unsigned long long>(c.bypasses),
                     static_cast<unsigned long long>(c.ghostHits),
                     static_cast<unsigned long long>(c.falsePresent));
    }

    std::fprintf(stderr,
                 "robustness: watchdog overhead %.2f%% "
                 "(%.1fM -> %.1fM events/s); %llu contained "
                 "fault(s); survivors %s\n",
                 rep.wdOverheadPct, rep.wdOffEventsPerSec / 1e6,
                 rep.wdOnEventsPerSec / 1e6,
                 static_cast<unsigned long long>(rep.containedFaults),
                 rep.containmentSurvivorsMatch ? "match clean run"
                                               : "DIVERGE");

    if (!rep.parKernelMetricsMatch) {
        std::fprintf(stderr,
                     "bench-report: FAIL: parallel kernel metrics "
                     "diverge from the sequential oracle\n");
        return 1;
    }
    if (!rep.containmentSurvivorsMatch) {
        std::fprintf(stderr,
                     "bench-report: FAIL: fault containment check "
                     "(expected exactly 1 contained fault and a "
                     "surviving row identical to the clean run)\n");
        return 1;
    }
    if (!rep.quick && rep.wdOverheadPct >= 2.0) {
        std::fprintf(stderr,
                     "bench-report: FAIL: watchdog overhead %.2f%% "
                     ">= 2%% (the watchdog must stay a branch and a "
                     "counter per event; see docs/robustness.md)\n",
                     rep.wdOverheadPct);
        return 1;
    }
    if (rep.rowHeapCallbackEvents != 0) {
        std::fprintf(stderr,
                     "bench-report: FAIL: %llu scheduled callbacks "
                     "spilled to the heap (capture over the "
                     "InlineFunction budget; see docs/perf.md)\n",
                     static_cast<unsigned long long>(
                         rep.rowHeapCallbackEvents));
        return 1;
    }
    return 0;
}
