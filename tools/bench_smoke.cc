/**
 * @file
 * bench-smoke: run a benchmark binary and assert that its stdout is
 * non-empty, well-formed JSON.
 *
 * Usage:  bench-smoke <mode> <binary> [args...]
 *
 * Modes:
 *   table      stdout must parse as the c3d-sweep/v1 result schema
 *              and contain at least one row (sweep-engine benches).
 *   json       stdout must parse as any non-empty JSON value
 *              (benches with their own schema: google-benchmark,
 *              analytic tables).
 *   sweep-cli  <binary> is the c3d-sweep tool: exercise the
 *              distributed-execution CLI end to end (whole run vs
 *              --shard x3 + merge vs partial --journal + --resume)
 *              and assert the JSON and CSV artifacts are
 *              byte-identical.
 *
 * Exit status 0 on success; 1 with a diagnostic on any failure. The
 * CTest smoke suite registers one invocation per bench binary.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "exp/journal.hh"
#include "exp/json.hh"
#include "exp/result_table.hh"

namespace
{

/** Shell-quote one argument (single quotes, POSIX). */
std::string
shellQuote(const std::string &arg)
{
    std::string out = "'";
    for (const char c : arg) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += '\'';
    return out;
}

/** Run a command, capture stdout; false on nonzero exit. */
bool
runCommand(const std::string &command, std::string &output)
{
    output.clear();
    FILE *pipe = popen(command.c_str(), "r");
    if (!pipe) {
        std::fprintf(stderr, "bench-smoke: cannot run: %s\n",
                     command.c_str());
        return false;
    }
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        output.append(buf, n);
    const int status = pclose(pipe);
    if (status != 0) {
        std::fprintf(stderr,
                     "bench-smoke: command exited with status %d: "
                     "%s\n",
                     status, command.c_str());
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::string error;
    if (c3d::exp::readTextFile(path, out, error) !=
        c3d::exp::ReadFile::Ok) {
        std::fprintf(stderr, "bench-smoke: %s\n", error.c_str());
        return false;
    }
    return true;
}

/**
 * End-to-end check of c3d-sweep's distribution features: the merged
 * shard journals and an interrupted-then-resumed run must reproduce
 * the single-process artifacts byte for byte.
 */
int
sweepCliCheck(const std::string &sweep_binary)
{
    const char *env = std::getenv("TMPDIR");
    std::string dir = (env && *env) ? env : "/tmp";
    dir += "/c3d_sweep_smoke_XXXXXX";
    std::vector<char> tmpl(dir.begin(), dir.end());
    tmpl.push_back('\0');
    if (!mkdtemp(tmpl.data())) {
        std::fprintf(stderr, "bench-smoke: mkdtemp failed\n");
        return 1;
    }
    dir.assign(tmpl.data());

    const std::string sweep = shellQuote(sweep_binary);
    const std::string grid =
        " --quick --designs=baseline,c3d"
        " --workloads=facesim,canneal --sockets=2,4 --jobs=2";
    std::vector<std::string> cleanup;
    std::string out;
    int rc = 1;

    const auto path = [&](const char *name) {
        const std::string p = dir + "/" + name;
        cleanup.push_back(p);
        return p;
    };
    const std::string whole_json = path("whole.json");
    const std::string whole_csv = path("whole.csv");

    do {
        // Single-process baselines.
        if (!runCommand(sweep + grid + " --out=" +
                        shellQuote(whole_json), out) ||
            !runCommand(sweep + grid + " --format=csv --out=" +
                        shellQuote(whole_csv), out))
            break;

        // Three disjoint shards, one journal each, then merge.
        std::string merge_args;
        bool shard_ok = true;
        for (int k = 0; k < 3 && shard_ok; ++k) {
            const std::string journal =
                path(("shard" + std::to_string(k) + ".jsonl")
                         .c_str());
            shard_ok = runCommand(
                sweep + grid + " --shard=" + std::to_string(k) +
                    "/3 --journal=" + shellQuote(journal) +
                    " --out=/dev/null",
                out);
            merge_args += " " + shellQuote(journal);
        }
        if (!shard_ok)
            break;
        const std::string merged_json = path("merged.json");
        const std::string merged_csv = path("merged.csv");
        if (!runCommand(sweep + " merge --out=" +
                        shellQuote(merged_json) + merge_args, out) ||
            !runCommand(sweep + " merge --format=csv --out=" +
                        shellQuote(merged_csv) + merge_args, out))
            break;

        // Interrupted run stand-in: journal only half the grid,
        // then --resume completes the remainder.
        const std::string resume_journal = path("resume.jsonl");
        const std::string resumed_json = path("resumed.json");
        if (!runCommand(sweep + grid + " --shard=0/2 --journal=" +
                        shellQuote(resume_journal) +
                        " --out=/dev/null", out) ||
            !runCommand(sweep + grid + " --resume=" +
                        shellQuote(resume_journal) + " --out=" +
                        shellQuote(resumed_json), out))
            break;

        std::string whole, other;
        if (!readFile(whole_json, whole))
            break;
        if (whole.empty()) {
            std::fprintf(stderr,
                         "bench-smoke: empty sweep artifact\n");
            break;
        }
        bool identical = true;
        for (const std::string &p : {merged_json, resumed_json}) {
            if (!readFile(p, other) || other != whole) {
                std::fprintf(stderr,
                             "bench-smoke: '%s' differs from the "
                             "single-process artifact\n",
                             p.c_str());
                identical = false;
            }
        }
        if (!readFile(whole_csv, whole) ||
            !readFile(merged_csv, other) || whole.empty() ||
            other != whole) {
            std::fprintf(stderr,
                         "bench-smoke: merged CSV differs from the "
                         "single-process artifact\n");
            identical = false;
        }
        if (!identical)
            break;
        std::printf("ok: shard+merge and resume artifacts are "
                    "byte-identical\n");
        rc = 0;
    } while (false);

    for (const std::string &p : cleanup)
        std::remove(p.c_str());
    rmdir(dir.c_str());
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: bench-smoke <table|json|sweep-cli> "
                     "<binary> [args...]\n");
        return 2;
    }
    const std::string mode = argv[1];
    if (mode == "sweep-cli")
        return sweepCliCheck(argv[2]);
    if (mode != "table" && mode != "json") {
        std::fprintf(stderr, "bench-smoke: unknown mode '%s'\n",
                     mode.c_str());
        return 2;
    }

    std::string command;
    for (int i = 2; i < argc; ++i) {
        if (i > 2)
            command += ' ';
        command += shellQuote(argv[i]);
    }

    std::string output;
    if (!runCommand(command, output))
        return 1;
    if (output.empty()) {
        std::fprintf(stderr, "bench-smoke: empty output from: %s\n",
                     command.c_str());
        return 1;
    }

    std::string error;
    if (mode == "table") {
        c3d::exp::ResultTable table;
        if (!c3d::exp::ResultTable::fromJson(output, table, error)) {
            std::fprintf(stderr,
                         "bench-smoke: output is not a valid sweep "
                         "table: %s\n",
                         error.c_str());
            return 1;
        }
        if (table.empty()) {
            std::fprintf(stderr,
                         "bench-smoke: sweep table has no rows\n");
            return 1;
        }
        std::printf("ok: %zu result rows\n", table.size());
    } else {
        c3d::exp::JsonValue value;
        if (!c3d::exp::parseJson(output, value, error)) {
            std::fprintf(stderr,
                         "bench-smoke: output is not valid JSON: "
                         "%s\n",
                         error.c_str());
            return 1;
        }
        std::printf("ok: valid JSON (%zu bytes)\n", output.size());
    }
    return 0;
}
