/**
 * @file
 * bench-smoke: run a benchmark binary and assert that its stdout is
 * non-empty, well-formed JSON.
 *
 * Usage:  bench-smoke <mode> <binary> [args...]
 *
 * Modes:
 *   table  stdout must parse as the c3d-sweep/v1 result schema and
 *          contain at least one row (sweep-engine benches).
 *   json   stdout must parse as any non-empty JSON value (benches
 *          with their own schema: google-benchmark, analytic tables).
 *
 * Exit status 0 on success; 1 with a diagnostic on any failure. The
 * CTest smoke suite registers one invocation per bench binary.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/json.hh"
#include "exp/result_table.hh"

namespace
{

/** Shell-quote one argument (single quotes, POSIX). */
std::string
shellQuote(const std::string &arg)
{
    std::string out = "'";
    for (const char c : arg) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += '\'';
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: bench-smoke <table|json> <binary> "
                     "[args...]\n");
        return 2;
    }
    const std::string mode = argv[1];
    if (mode != "table" && mode != "json") {
        std::fprintf(stderr, "bench-smoke: unknown mode '%s'\n",
                     mode.c_str());
        return 2;
    }

    std::string command;
    for (int i = 2; i < argc; ++i) {
        if (i > 2)
            command += ' ';
        command += shellQuote(argv[i]);
    }

    FILE *pipe = popen(command.c_str(), "r");
    if (!pipe) {
        std::fprintf(stderr, "bench-smoke: cannot run: %s\n",
                     command.c_str());
        return 1;
    }
    std::string output;
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        output.append(buf, n);
    const int status = pclose(pipe);
    if (status != 0) {
        std::fprintf(stderr,
                     "bench-smoke: command exited with status %d: "
                     "%s\n",
                     status, command.c_str());
        return 1;
    }
    if (output.empty()) {
        std::fprintf(stderr, "bench-smoke: empty output from: %s\n",
                     command.c_str());
        return 1;
    }

    std::string error;
    if (mode == "table") {
        c3d::exp::ResultTable table;
        if (!c3d::exp::ResultTable::fromJson(output, table, error)) {
            std::fprintf(stderr,
                         "bench-smoke: output is not a valid sweep "
                         "table: %s\n",
                         error.c_str());
            return 1;
        }
        if (table.empty()) {
            std::fprintf(stderr,
                         "bench-smoke: sweep table has no rows\n");
            return 1;
        }
        std::printf("ok: %zu result rows\n", table.size());
    } else {
        c3d::exp::JsonValue value;
        if (!c3d::exp::parseJson(output, value, error)) {
            std::fprintf(stderr,
                         "bench-smoke: output is not valid JSON: "
                         "%s\n",
                         error.c_str());
            return 1;
        }
        std::printf("ok: valid JSON (%zu bytes)\n", output.size());
    }
    return 0;
}
