/**
 * @file
 * bench-smoke: run a benchmark binary and assert that its stdout is
 * non-empty, well-formed JSON.
 *
 * Usage:  bench-smoke <mode> <binary> [args...]
 *
 * Modes:
 *   table      stdout must parse as the current c3d-sweep result schema
 *              and contain at least one row (sweep-engine benches).
 *   json       stdout must parse as any non-empty JSON value
 *              (benches with their own schema: google-benchmark,
 *              analytic tables).
 *   sweep-cli  <binary> is the c3d-sweep tool: exercise the
 *              distributed-execution CLI end to end (whole run vs
 *              --shard x3 + merge vs partial --journal + --resume)
 *              and assert the JSON and CSV artifacts are
 *              byte-identical.
 *   trace-cli  <c3d-sweep> <c3d-trace>: record a trace, sweep it
 *              via --workloads=trace: (whole vs sharded+merged vs
 *              resumed, byte-identical), and assert that resuming a
 *              journal against a modified trace fails loudly.
 *   compose-cli  <c3d-sweep> <c3d-trace>: record two traces, pin
 *              them into a composition manifest (c3d-trace compose),
 *              sweep it via --workloads=compose: (whole vs
 *              sharded+merged vs resumed, byte-identical, per-tenant
 *              stats present), and assert that a modified member
 *              trace is refused with a precise diagnostic.
 *
 * Exit status 0 on success; 1 with a diagnostic on any failure. The
 * CTest smoke suite registers one invocation per bench binary.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "exp/journal.hh"
#include "exp/json.hh"
#include "exp/result_table.hh"

namespace
{

/** Shell-quote one argument (single quotes, POSIX). */
std::string
shellQuote(const std::string &arg)
{
    std::string out = "'";
    for (const char c : arg) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += '\'';
    return out;
}

/** Run a command, capture stdout; false on nonzero exit. */
bool
runCommand(const std::string &command, std::string &output)
{
    output.clear();
    FILE *pipe = popen(command.c_str(), "r");
    if (!pipe) {
        std::fprintf(stderr, "bench-smoke: cannot run: %s\n",
                     command.c_str());
        return false;
    }
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0)
        output.append(buf, n);
    const int status = pclose(pipe);
    if (status != 0) {
        std::fprintf(stderr,
                     "bench-smoke: command exited with status %d: "
                     "%s\n",
                     status, command.c_str());
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::string error;
    if (c3d::exp::readTextFile(path, out, error) !=
        c3d::exp::ReadFile::Ok) {
        std::fprintf(stderr, "bench-smoke: %s\n", error.c_str());
        return false;
    }
    return true;
}

/**
 * Scratch directory for a CLI differential: mkdtemp under TMPDIR,
 * every path() tracked and removed (with the directory) on scope
 * exit, so early returns clean up too.
 */
class SmokeDir
{
  public:
    ~SmokeDir()
    {
        for (const std::string &p : files)
            std::remove(p.c_str());
        if (!dir.empty())
            rmdir(dir.c_str());
    }

    /** @p tag must end in the mkdtemp XXXXXX template. */
    bool
    init(const char *tag)
    {
        const char *env = std::getenv("TMPDIR");
        dir = (env && *env) ? env : "/tmp";
        dir += std::string("/") + tag;
        std::vector<char> tmpl(dir.begin(), dir.end());
        tmpl.push_back('\0');
        if (!mkdtemp(tmpl.data())) {
            std::fprintf(stderr, "bench-smoke: mkdtemp failed\n");
            dir.clear();
            return false;
        }
        dir.assign(tmpl.data());
        return true;
    }

    /** Path under the directory, tracked for cleanup. */
    std::string
    path(const std::string &name)
    {
        const std::string p = dir + "/" + name;
        files.push_back(p);
        return p;
    }

  private:
    std::string dir;
    std::vector<std::string> files;
};

/**
 * The differential both CLI checks share: run `sweep grid` whole,
 * then @p shards journaled shard runs, merge the journals, and
 * resume shard 0's journal -- the merged and resumed JSON must equal
 * the whole run's byte for byte. Hands back the shard journal paths
 * for format-specific extras and refusal tests.
 */
bool
shardMergeResumeDifferential(const std::string &sweep,
                             const std::string &grid, int shards,
                             SmokeDir &tmp,
                             std::vector<std::string> &journals)
{
    std::string out;
    const std::string whole_json = tmp.path("whole.json");
    if (!runCommand(sweep + grid + " --out=" +
                    shellQuote(whole_json), out))
        return false;

    std::string merge_args;
    journals.clear();
    for (int k = 0; k < shards; ++k) {
        const std::string journal =
            tmp.path("shard" + std::to_string(k) + ".jsonl");
        if (!runCommand(sweep + grid + " --shard=" +
                            std::to_string(k) + "/" +
                            std::to_string(shards) + " --journal=" +
                            shellQuote(journal) + " --out=/dev/null",
                        out))
            return false;
        journals.push_back(journal);
        merge_args += " " + shellQuote(journal);
    }

    const std::string merged_json = tmp.path("merged.json");
    const std::string resumed_json = tmp.path("resumed.json");
    if (!runCommand(sweep + " merge --out=" +
                    shellQuote(merged_json) + merge_args, out) ||
        !runCommand(sweep + grid + " --resume=" +
                    shellQuote(journals[0]) + " --out=" +
                    shellQuote(resumed_json), out))
        return false;

    std::string whole, other;
    if (!readFile(whole_json, whole) || whole.empty()) {
        std::fprintf(stderr, "bench-smoke: empty sweep artifact\n");
        return false;
    }
    bool identical = true;
    for (const std::string &p : {merged_json, resumed_json}) {
        if (!readFile(p, other) || other != whole) {
            std::fprintf(stderr,
                         "bench-smoke: '%s' differs from the "
                         "single-process artifact\n",
                         p.c_str());
            identical = false;
        }
    }
    return identical;
}

/**
 * End-to-end check of c3d-sweep's distribution features: the merged
 * shard journals and an interrupted-then-resumed run must reproduce
 * the single-process artifacts byte for byte (JSON via the shared
 * differential, CSV checked on top).
 */
int
sweepCliCheck(const std::string &sweep_binary)
{
    SmokeDir tmp;
    if (!tmp.init("c3d_sweep_smoke_XXXXXX"))
        return 1;
    const std::string sweep = shellQuote(sweep_binary);
    const std::string grid =
        " --quick --designs=baseline,c3d"
        " --workloads=facesim,canneal --sockets=2,4 --jobs=2";

    std::vector<std::string> journals;
    if (!shardMergeResumeDifferential(sweep, grid, 3, tmp, journals))
        return 1;

    // The CSV emitters must agree byte for byte too.
    std::string out, whole, merged;
    const std::string whole_csv = tmp.path("whole.csv");
    const std::string merged_csv = tmp.path("merged.csv");
    std::string merge_args;
    for (const std::string &j : journals)
        merge_args += " " + shellQuote(j);
    if (!runCommand(sweep + grid + " --format=csv --out=" +
                    shellQuote(whole_csv), out) ||
        !runCommand(sweep + " merge --format=csv --out=" +
                    shellQuote(merged_csv) + merge_args, out))
        return 1;
    if (!readFile(whole_csv, whole) ||
        !readFile(merged_csv, merged) || whole.empty() ||
        merged != whole) {
        std::fprintf(stderr,
                     "bench-smoke: merged CSV differs from the "
                     "single-process artifact\n");
        return 1;
    }
    std::printf("ok: shard+merge and resume artifacts are "
                "byte-identical\n");
    return 0;
}

/**
 * Run a command that is EXPECTED to fail (nonzero exit) with a
 * diagnostic containing @p needle -- "failed for the right reason",
 * so a refusal path that breaks differently cannot keep passing.
 */
bool
runExpectFailure(const std::string &command, const char *needle)
{
    std::string out;
    // `!` inverts the status in-shell, so the expected failure is
    // quiet and an unexpected success is the loud diagnostic.
    if (!runCommand("! { " + command + " ; } 2>&1", out))
        return false;
    if (out.find(needle) == std::string::npos) {
        std::fprintf(stderr,
                     "bench-smoke: expected the failure to mention "
                     "'%s'; got:\n%s\n",
                     needle, out.c_str());
        return false;
    }
    return true;
}

/**
 * End-to-end check of trace-driven sweeps: `c3d-trace record` a
 * synthetic profile, run it through the sweep engine as a `trace:`
 * workload -- whole vs sharded+merged vs interrupted+resumed must be
 * byte-identical -- then corrupt the trace and assert that resuming
 * the journal refuses (the grid fingerprint folds the trace's
 * content hash).
 */
int
traceCliCheck(const std::string &sweep_binary,
              const std::string &trace_binary)
{
    SmokeDir tmp;
    if (!tmp.init("c3d_trace_smoke_XXXXXX"))
        return 1;
    const std::string sweep = shellQuote(sweep_binary);
    const std::string tracer = shellQuote(trace_binary);
    std::string out;

    const std::string trace = tmp.path("smoke.c3dt");
    const std::string grid = " --quick --designs=baseline,c3d"
                             " --sockets=2 --jobs=2 --workloads=" +
                             shellQuote("trace:" + trace);

    // Record a small deterministic trace and sanity-check the
    // inspection subcommands.
    if (!runCommand(tracer + " record --profile=facesim"
                           " --cores=4 --ops=600 --seed=7"
                           " --out=" + shellQuote(trace) +
                           " 2>&1", out) ||
        !runCommand(tracer + " validate " + shellQuote(trace),
                    out) ||
        !runCommand(tracer + " info " + shellQuote(trace), out))
        return 1;
    if (out.find("cores:") == std::string::npos) {
        std::fprintf(stderr,
                     "bench-smoke: c3d-trace info output looks "
                     "wrong\n");
        return 1;
    }

    // A truncated copy must itself be a valid trace.
    const std::string trimmed = tmp.path("trimmed.c3dt");
    if (!runCommand(tracer + " truncate " + shellQuote(trace) +
                        " --records=1200 --out=" +
                        shellQuote(trimmed) + " 2>&1",
                    out) ||
        !runCommand(tracer + " validate " + shellQuote(trimmed),
                    out))
        return 1;

    // Whole vs sharded+merged vs resumed, byte for byte.
    std::vector<std::string> journals;
    if (!shardMergeResumeDifferential(sweep, grid, 2, tmp, journals))
        return 1;

    // Flip one address byte (offset 48 = record 1's addr): the
    // trace stays structurally valid but its content hash -- and
    // with it the grid fingerprint -- changes, so --resume must
    // refuse the journal. Appended garbage must instead fail
    // structural validation outright.
    if (!runCommand("printf '\\377' | dd of=" + shellQuote(trace) +
                        " bs=1 seek=48 conv=notrunc 2>/dev/null",
                    out))
        return 1;
    if (!runExpectFailure(sweep + grid + " --resume=" +
                              shellQuote(journals[0]) +
                              " --out=/dev/null",
                          "different grid"))
        return 1;
    if (!runCommand("printf 'x' >> " + shellQuote(trace), out))
        return 1;
    if (!runExpectFailure(tracer + " validate " + shellQuote(trace),
                          "truncated mid-record") ||
        !runExpectFailure(sweep + grid + " --out=/dev/null",
                          "truncated mid-record"))
        return 1;

    std::printf("ok: trace sweep shard+merge and resume are "
                "byte-identical; modified trace refused\n");
    return 0;
}

/**
 * End-to-end check of multi-tenant composed sweeps: record two
 * distinct traces, `c3d-trace compose` them into a manifest, and run
 * the same distribution differential a plain trace sweep gets --
 * whole vs sharded+merged vs interrupted+resumed byte-identical --
 * plus composition-specific checks: `info --json` is machine
 * readable, the CSV rows carry per-tenant QoS columns, the manifest
 * refuses to overwrite a member, and a member modified after
 * composition is refused naming both hashes.
 */
int
composeCliCheck(const std::string &sweep_binary,
                const std::string &trace_binary)
{
    SmokeDir tmp;
    if (!tmp.init("c3d_compose_smoke_XXXXXX"))
        return 1;
    const std::string sweep = shellQuote(sweep_binary);
    const std::string tracer = shellQuote(trace_binary);
    std::string out;

    // Two small tenants with different profiles and seeds, so their
    // streams (and QoS stats) genuinely differ.
    const std::string trace_a = tmp.path("tenant_a.c3dt");
    const std::string trace_b = tmp.path("tenant_b.c3dt");
    if (!runCommand(tracer + " record --profile=facesim --cores=2"
                           " --ops=500 --seed=11 --out=" +
                        shellQuote(trace_a) + " 2>&1", out) ||
        !runCommand(tracer + " record --profile=canneal --cores=2"
                           " --ops=500 --seed=13 --out=" +
                        shellQuote(trace_b) + " 2>&1", out))
        return 1;

    // info --json must be machine-readable with the documented keys.
    if (!runCommand(tracer + " info --json " + shellQuote(trace_a),
                    out))
        return 1;
    {
        c3d::exp::JsonValue info;
        std::string error;
        if (!c3d::exp::parseJson(out, info, error) ||
            !info.isObject()) {
            std::fprintf(stderr,
                         "bench-smoke: info --json is not a JSON "
                         "object: %s\n", error.c_str());
            return 1;
        }
        for (const char *key :
             {"file", "workload", "cores", "records", "content_hash",
              "per_core_records"}) {
            if (!info.member(key)) {
                std::fprintf(stderr,
                             "bench-smoke: info --json lacks '%s'\n",
                             key);
                return 1;
            }
        }
    }

    // Composing over a member must refuse before touching the file.
    if (!runExpectFailure(tracer + " compose --out=" +
                              shellQuote(trace_a) + " " +
                              shellQuote(trace_a) + " " +
                              shellQuote(trace_b),
                          "refusing"))
        return 1;

    const std::string manifest = tmp.path("mix.json");
    if (!runCommand(tracer + " compose --name=smokemix --seed=5"
                           " --assign=interleave --arrival=staggered"
                           " --stagger-gap=64 --out=" +
                        shellQuote(manifest) + " " +
                        shellQuote(trace_a) + " " +
                        shellQuote(trace_b) + " 2>&1", out))
        return 1;

    // Whole vs sharded+merged vs resumed, byte for byte.
    const std::string grid = " --quick --designs=baseline,c3d"
                             " --sockets=2 --jobs=2 --workloads=" +
                             shellQuote("compose:" + manifest);
    std::vector<std::string> journals;
    if (!shardMergeResumeDifferential(sweep, grid, 2, tmp, journals))
        return 1;

    // The CSV artifact must carry the per-tenant QoS breakdown.
    const std::string csv = tmp.path("composed.csv");
    std::string csv_text;
    if (!runCommand(sweep + grid + " --format=csv --out=" +
                    shellQuote(csv), out) ||
        !readFile(csv, csv_text))
        return 1;
    for (const char *needle : {"lat_p50", "t0:", "t1:"}) {
        if (csv_text.find(needle) == std::string::npos) {
            std::fprintf(stderr,
                         "bench-smoke: composed CSV lacks per-tenant "
                         "marker '%s'\n", needle);
            return 1;
        }
    }

    // Flip one address byte in a member: structurally valid, but the
    // content hash no longer matches the manifest's pin, so the
    // sweep must refuse with the precise diagnostic.
    if (!runCommand("printf '\\377' | dd of=" + shellQuote(trace_b) +
                        " bs=1 seek=48 conv=notrunc 2>/dev/null",
                    out))
        return 1;
    if (!runExpectFailure(sweep + grid + " --out=/dev/null",
                          "changed since the manifest was composed"))
        return 1;

    std::printf("ok: composed sweep shard+merge and resume are "
                "byte-identical; modified member refused\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: bench-smoke <table|json|sweep-cli> "
                     "<binary> [args...]\n");
        return 2;
    }
    const std::string mode = argv[1];
    if (mode == "sweep-cli")
        return sweepCliCheck(argv[2]);
    if (mode == "trace-cli" || mode == "compose-cli") {
        if (argc < 4) {
            std::fprintf(stderr,
                         "usage: bench-smoke %s <c3d-sweep> "
                         "<c3d-trace>\n", mode.c_str());
            return 2;
        }
        return mode == "trace-cli"
            ? traceCliCheck(argv[2], argv[3])
            : composeCliCheck(argv[2], argv[3]);
    }
    if (mode != "table" && mode != "json") {
        std::fprintf(stderr, "bench-smoke: unknown mode '%s'\n",
                     mode.c_str());
        return 2;
    }

    std::string command;
    for (int i = 2; i < argc; ++i) {
        if (i > 2)
            command += ' ';
        command += shellQuote(argv[i]);
    }

    std::string output;
    if (!runCommand(command, output))
        return 1;
    if (output.empty()) {
        std::fprintf(stderr, "bench-smoke: empty output from: %s\n",
                     command.c_str());
        return 1;
    }

    std::string error;
    if (mode == "table") {
        c3d::exp::ResultTable table;
        if (!c3d::exp::ResultTable::fromJson(output, table, error)) {
            std::fprintf(stderr,
                         "bench-smoke: output is not a valid sweep "
                         "table: %s\n",
                         error.c_str());
            return 1;
        }
        if (table.empty()) {
            std::fprintf(stderr,
                         "bench-smoke: sweep table has no rows\n");
            return 1;
        }
        std::printf("ok: %zu result rows\n", table.size());
    } else {
        c3d::exp::JsonValue value;
        if (!c3d::exp::parseJson(output, value, error)) {
            std::fprintf(stderr,
                         "bench-smoke: output is not valid JSON: "
                         "%s\n",
                         error.c_str());
            return 1;
        }
        std::printf("ok: valid JSON (%zu bytes)\n", output.size());
    }
    return 0;
}
