/**
 * @file
 * c3d-sweep: declarative parameter-sweep CLI over the experiment
 * engine.
 *
 * Expands a grid of protocol x sockets x DRAM-cache capacity x
 * mapping x workload points, executes the runs on a worker pool, and
 * emits the result table as JSON (default), CSV, or a human table.
 * Rows are ordered by grid expansion, never by completion, so output
 * is byte-identical for any --jobs value.
 *
 * Distributed/resumable execution (docs/sweeps.md): `--shard=K/N`
 * runs the K-th of N disjoint slices of the grid, `--journal=FILE`
 * checkpoints each completed row to a crash-safe JSONL sidecar,
 * `--resume=FILE` skips rows the journal already holds, and the
 * `merge` subcommand combines shard journals into the single-process
 * result table, byte for byte.
 *
 * Examples:
 *   c3d-sweep --designs=baseline,c3d --workloads=facesim,canneal
 *   c3d-sweep --workloads=all --sockets=2,4 --jobs=8 --format=csv
 *   c3d-sweep --designs=c3d --dram-cache-mb=256,512,1024 --out=r.json
 *   c3d-sweep --workloads=all --shard=0/3 --journal=s0.jsonl
 *   c3d-sweep --workloads=all --resume=sweep.jsonl --out=r.json
 *   c3d-sweep merge --out=r.json s0.jsonl s1.jsonl s2.jsonl
 *   c3d-sweep --workloads=trace:app.c3dt,traces:corpus.manifest
 */

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "exp/journal.hh"
#include "exp/sweep_engine.hh"
#include "sim/fault_injector.hh"
#include "sim/watchdog.hh"
#include "trace/trace_file.hh"
#include "workload/composition.hh"

namespace
{

using namespace c3d;

const char *const Usage =
    "c3d-sweep: run a declarative design-space sweep\n"
    "\n"
    "grid axes (comma-separated lists):\n"
    "  --designs=A,B          baseline|snoopy|full-dir|c3d|"
    "c3d-full-dir (default c3d)\n"
    "  --protocols=A,B        mesi|mesif|moesi|dragon (default mesi);\n"
    "                         snoopy-family protocol variants --\n"
    "                         directory designs keep their fixed\n"
    "                         engines but still name the protocol in\n"
    "                         the row identity\n"
    "  --predictors=A,B       region|perceptron (default region);\n"
    "                         DRAM-cache admission predictors\n"
    "                         (docs/predictors.md) -- presence\n"
    "                         filtering stays exact-or-conservative\n"
    "                         for every kind\n"
    "  --workloads=A,B|all    paper profile names (default facesim);\n"
    "                         'all' = the nine parallel profiles;\n"
    "                         'trace:FILE' = replay a c3dsim trace\n"
    "                         (c3d-trace records them); 'traces:M' =\n"
    "                         every trace listed in manifest M (one\n"
    "                         path per line, # comments, relative\n"
    "                         paths resolve against the manifest);\n"
    "                         'compose:M' = a multi-tenant composition\n"
    "                         manifest (c3d-trace compose) -- rows\n"
    "                         report per-tenant QoS stats\n"
    "  --sockets=N,M          socket counts (default 4)\n"
    "  --dram-cache-mb=N,M    unscaled DRAM-cache MB; 0 = default 1 GB\n"
    "  --mappings=P,Q         INT|FT1|FT2 (default FT2)\n"
    "\n"
    "run parameters:\n"
    "  --cores-per-socket=N   0 = paper rule: 16 on 2-socket, else 8\n"
    "  --scale=N              capacity/footprint shrink (default 32)\n"
    "  --warmup=N             refs/core before the window (0 = auto)\n"
    "  --measure=N            refs/core measured (default 25000)\n"
    "  --seed=N               override every profile's RNG seed\n"
    "  --quick                tiny grid preset for smoke runs\n"
    "\n"
    "execution and output:\n"
    "  --jobs=N               worker threads (default 1; 0 = all cores)\n"
    "  --parallel-kernel[=T]  drive each eligible run's sockets on T\n"
    "                         kernel threads (default min(sockets,\n"
    "                         cores)); results are byte-identical to\n"
    "                         the default sequential kernel. Best\n"
    "                         combined with --jobs=1; ineligible\n"
    "                         configs (1 socket, zero hop latency,\n"
    "                         TLB classification) fall back to the\n"
    "                         sequential kernel\n"
    "  --format=json|csv|table   (default json)\n"
    "  --out=FILE             write to FILE instead of stdout\n"
    "  --progress             report per-run progress on stderr\n"
    "  --help\n"
    "\n"
    "distribution and checkpointing:\n"
    "  --shard=K/N            run only grid points with index%N == K\n"
    "                         (K in 0..N-1, N <= 4096; shards are\n"
    "                         disjoint and together cover the grid)\n"
    "  --journal=FILE         append each completed row to a fresh\n"
    "                         crash-safe JSONL journal (refuses an\n"
    "                         existing file; SIGINT/SIGTERM stop\n"
    "                         cleanly)\n"
    "  --resume=FILE          continue a journaled run: rows already\n"
    "                         in FILE are not re-run; new rows are\n"
    "                         appended (creates FILE when absent);\n"
    "                         journaled failures re-run\n"
    "\n"
    "robustness (docs/robustness.md):\n"
    "  --fail-policy=P        abort (default) | skip | retry[:N].\n"
    "                         abort: a failed grid point stops the\n"
    "                         sweep. skip: the failure is contained,\n"
    "                         journaled, and the row is absent from\n"
    "                         the output (exit 3). retry: re-run the\n"
    "                         row up to N times (default 1) on the\n"
    "                         sequential fallback kernel before\n"
    "                         giving up as skip does\n"
    "  --watchdog-wall-ms=N   per-row wall-clock budget (0 = off)\n"
    "  --watchdog-events=N    per-row executed-event budget (0 = off)\n"
    "  --watchdog-stall=N     per-queue same-tick event limit before\n"
    "                         a livelock is declared (default\n"
    "                         2000000; 0 = off)\n"
    "  --inject-fault=S,S     deterministic fault injection (for\n"
    "                         testing the containment machinery):\n"
    "                         S = [par:]panic@TICK | [par:]hang@TICK\n"
    "                         | [par:]block@TICK\n"
    "                         | [par:]stall-msg@N, with an optional\n"
    "                         trailing :K/M hitting only grid points\n"
    "                         with index%M == K; 'par:' arms only\n"
    "                         when --parallel-kernel drives the run\n"
    "\n"
    "merge subcommand:\n"
    "  c3d-sweep merge [--format=json|csv|table] [--out=FILE] \\\n"
    "                  JOURNAL...\n"
    "  Combine journals of the same grid (e.g. one per shard) into\n"
    "  the complete result table in grid order; refuses conflicting\n"
    "  duplicates and missing grid points.\n";

/** One --inject-fault spec: a fault plan plus a grid-point
 *  selector (applies where index % mod == rem; first match wins). */
struct FaultSel
{
    FaultPlan plan;
    unsigned rem = 0;
    unsigned mod = 1;
};

struct SweepCli
{
    exp::SweepGrid grid;
    unsigned jobs = 1;
    KernelOptions kernel; //!< --parallel-kernel
    std::string format = "json";
    std::string outFile;
    bool progress = false;
    bool quick = false;
    bool showHelp = false;
    std::string error;

    // Distribution and checkpointing.
    unsigned shardIdx = 0;
    unsigned shardCnt = 1;
    std::string journalFile; //!< --journal (fresh)
    std::string resumeFile;  //!< --resume (continue)

    // Robustness: containment policy, watchdog budgets, injection.
    // The stall (livelock) detector defaults on -- it is exact,
    // deterministic, and costs one branch per event; the wall/event
    // budgets are opt-in because sensible values are row-specific.
    exp::FailPolicy failPolicy = exp::FailPolicy::Abort;
    unsigned retryCount = 1;
    WatchdogLimits watchdog{/*wallMs=*/0, /*maxEvents=*/0,
                            /*stallEvents=*/2000000};
    std::vector<FaultSel> faults; //!< --inject-fault
};

/** Parsed `c3d-sweep merge` command line. */
struct MergeCli
{
    std::vector<std::string> journals;
    std::string format = "json";
    std::string outFile;
    bool showHelp = false;
    std::string error;
};

/** "K/N" with K < N and N >= 1. */
bool
parseShard(const std::string &value, unsigned &idx, unsigned &cnt)
{
    const std::size_t slash = value.find('/');
    if (slash == std::string::npos)
        return false;
    std::uint64_t k = 0, n = 0;
    if (!c3d::parseU64(value.substr(0, slash), k) ||
        !c3d::parseU64(value.substr(slash + 1), n))
        return false;
    if (n < 1 || n > 4096 || k >= n)
        return false;
    idx = static_cast<unsigned>(k);
    cnt = static_cast<unsigned>(n);
    return true;
}

/** Directory prefix of @p path, up to and including the last '/'. */
std::string
dirPrefix(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash + 1);
}

/**
 * Load a trace manifest: one trace path per line, blank lines and
 * '#' comments ignored, relative paths resolved against the
 * manifest's own directory. Each trace is validated on load.
 */
bool
loadTraceManifest(const std::string &manifest_path,
                  std::vector<WorkloadProfile> &out,
                  std::string &error)
{
    std::string text;
    if (exp::readTextFile(manifest_path, text, error) !=
        exp::ReadFile::Ok)
        return false;
    const std::string dir = dirPrefix(manifest_path);
    std::size_t added = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        std::string line = text.substr(start, end - start);
        start = end + 1;
        // Trim whitespace; skip blanks and comments.
        const std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        const std::size_t last = line.find_last_not_of(" \t\r");
        line = line.substr(first, last - first + 1);
        if (line[0] != '/')
            line = dir + line;
        WorkloadProfile p;
        if (!loadTraceProfile(line, p, error)) {
            error = "manifest '" + manifest_path + "': " + error;
            return false;
        }
        out.push_back(std::move(p));
        ++added;
    }
    if (added == 0) {
        error = "manifest '" + manifest_path + "' lists no traces";
        return false;
    }
    return true;
}

bool
parseWorkloads(const std::string &value,
               std::vector<WorkloadProfile> &out, std::string &error)
{
    out.clear();
    for (const std::string &name : splitList(value)) {
        if (name == "all") {
            for (const WorkloadProfile &p : parallelProfiles())
                out.push_back(p);
        } else if (name.rfind("trace:", 0) == 0) {
            WorkloadProfile p;
            if (!loadTraceProfile(name.substr(6), p, error))
                return false;
            out.push_back(std::move(p));
        } else if (name.rfind("traces:", 0) == 0) {
            if (!loadTraceManifest(name.substr(7), out, error))
                return false;
        } else if (name.rfind("compose:", 0) == 0) {
            // Multi-tenant composition manifest (c3d-trace compose):
            // validates the manifest and every member trace now, so
            // a stale pin refuses before any simulation starts.
            WorkloadProfile p;
            if (!loadCompositionProfile(name.substr(8), p, error))
                return false;
            out.push_back(std::move(p));
        } else if (name == "mcf") {
            out.push_back(mcfProfile());
        } else {
            bool known = false;
            for (const WorkloadProfile &p : parallelProfiles()) {
                if (p.name == name) {
                    out.push_back(p);
                    known = true;
                    break;
                }
            }
            if (!known) {
                error = "unknown workload '" + name + "'";
                return false;
            }
        }
    }
    if (out.empty()) {
        error = "empty workload list";
        return false;
    }
    return true;
}

SweepCli
parseSweepCli(int argc, char **argv)
{
    SweepCli cli;
    cli.grid.workloads = {profileByName("facesim")};

    for (int i = 1; i < argc; ++i) {
        std::string key, value;
        if (!splitFlag(argv[i], key, value)) {
            cli.error = std::string("unexpected argument '") +
                argv[i] + "'";
            return cli;
        }
        std::uint64_t n = 0;
        if (key == "help") {
            cli.showHelp = true;
        } else if (key == "designs") {
            cli.grid.designs.clear();
            for (const std::string &name : splitList(value)) {
                Design d;
                if (!parseDesign(name, d)) {
                    cli.error = "unknown design '" + name + "'";
                    return cli;
                }
                cli.grid.designs.push_back(d);
            }
            if (cli.grid.designs.empty()) {
                cli.error = "empty design list";
                return cli;
            }
        } else if (key == "protocols") {
            cli.grid.protocols.clear();
            for (const std::string &name : splitList(value)) {
                Protocol p;
                if (!parseProtocol(name, p)) {
                    cli.error = "unknown protocol '" + name + "'";
                    return cli;
                }
                cli.grid.protocols.push_back(p);
            }
            if (cli.grid.protocols.empty()) {
                cli.error = "empty protocol list";
                return cli;
            }
        } else if (key == "predictors") {
            cli.grid.predictors.clear();
            for (const std::string &name : splitList(value)) {
                PredictorKind k;
                if (!parsePredictorKind(name, k)) {
                    cli.error = "unknown predictor '" + name + "'";
                    return cli;
                }
                cli.grid.predictors.push_back(k);
            }
            if (cli.grid.predictors.empty()) {
                cli.error = "empty predictor list";
                return cli;
            }
        } else if (key == "workloads") {
            if (!parseWorkloads(value, cli.grid.workloads, cli.error))
                return cli;
        } else if (key == "sockets") {
            cli.grid.sockets.clear();
            for (const std::string &item : splitList(value)) {
                if (!parseU64(item, n) || n < 1 || n > 8) {
                    cli.error = "bad socket count '" + item + "'";
                    return cli;
                }
                cli.grid.sockets.push_back(
                    static_cast<std::uint32_t>(n));
            }
        } else if (key == "dram-cache-mb") {
            cli.grid.dramCacheMb.clear();
            for (const std::string &item : splitList(value)) {
                if (!parseU64(item, n)) {
                    cli.error = "bad dram-cache-mb '" + item + "'";
                    return cli;
                }
                cli.grid.dramCacheMb.push_back(n);
            }
        } else if (key == "mappings") {
            cli.grid.mappings.clear();
            for (const std::string &item : splitList(value)) {
                MappingPolicy p;
                if (!parseMapping(item, p)) {
                    cli.error = "unknown mapping '" + item + "'";
                    return cli;
                }
                cli.grid.mappings.push_back(p);
            }
        } else if (key == "cores-per-socket") {
            if (!parseU64(value, n) || n > 64) {
                cli.error = "bad cores-per-socket";
                return cli;
            }
            cli.grid.coresPerSocket = static_cast<std::uint32_t>(n);
        } else if (key == "scale") {
            if (!parseU64(value, n) || n < 1) {
                cli.error = "bad scale";
                return cli;
            }
            cli.grid.scale = static_cast<std::uint32_t>(n);
        } else if (key == "warmup") {
            if (!parseU64(value, cli.grid.warmupOps)) {
                cli.error = "bad warmup";
                return cli;
            }
        } else if (key == "measure") {
            if (!parseU64(value, cli.grid.measureOps) ||
                cli.grid.measureOps == 0) {
                cli.error = "bad measure";
                return cli;
            }
        } else if (key == "seed") {
            if (!parseU64(value, cli.grid.seed)) {
                cli.error = "bad seed";
                return cli;
            }
        } else if (key == "jobs") {
            if (!parseU64(value, n) || n > 256) {
                cli.error = "bad jobs";
                return cli;
            }
            cli.jobs = static_cast<unsigned>(n);
        } else if (key == "parallel-kernel") {
            cli.kernel.parallel = true;
            if (!value.empty()) {
                if (!parseU64(value, n) || n < 1 || n > 256) {
                    cli.error = "bad parallel-kernel thread count";
                    return cli;
                }
                cli.kernel.threads = static_cast<unsigned>(n);
            }
        } else if (key == "format") {
            if (value != "json" && value != "csv" &&
                value != "table") {
                cli.error = "unknown format '" + value + "'";
                return cli;
            }
            cli.format = value;
        } else if (key == "out") {
            cli.outFile = value;
        } else if (key == "progress") {
            cli.progress = true;
        } else if (key == "quick") {
            cli.quick = true;
        } else if (key == "shard") {
            if (!parseShard(value, cli.shardIdx, cli.shardCnt)) {
                cli.error = "bad shard '" + value +
                    "' (want K/N with K < N and N <= 4096)";
                return cli;
            }
        } else if (key == "journal") {
            cli.journalFile = value;
        } else if (key == "resume") {
            cli.resumeFile = value;
        } else if (key == "fail-policy") {
            std::string pol = value;
            std::string count;
            const std::size_t colon = pol.find(':');
            if (colon != std::string::npos) {
                count = pol.substr(colon + 1);
                pol = pol.substr(0, colon);
            }
            if (pol == "abort") {
                cli.failPolicy = exp::FailPolicy::Abort;
            } else if (pol == "skip") {
                cli.failPolicy = exp::FailPolicy::Skip;
            } else if (pol == "retry") {
                cli.failPolicy = exp::FailPolicy::Retry;
            } else {
                cli.error = "unknown fail policy '" + value +
                    "' (want abort, skip, or retry[:N])";
                return cli;
            }
            if (!count.empty()) {
                if (pol != "retry" || !parseU64(count, n) || n < 1 ||
                    n > 16) {
                    cli.error = "bad fail policy '" + value + "'";
                    return cli;
                }
                cli.retryCount = static_cast<unsigned>(n);
            }
        } else if (key == "watchdog-wall-ms") {
            if (!parseU64(value, cli.watchdog.wallMs)) {
                cli.error = "bad watchdog-wall-ms";
                return cli;
            }
        } else if (key == "watchdog-events") {
            if (!parseU64(value, cli.watchdog.maxEvents)) {
                cli.error = "bad watchdog-events";
                return cli;
            }
        } else if (key == "watchdog-stall") {
            if (!parseU64(value, cli.watchdog.stallEvents)) {
                cli.error = "bad watchdog-stall";
                return cli;
            }
        } else if (key == "inject-fault") {
            for (const std::string &item : splitList(value)) {
                FaultSel sel;
                std::string spec = item;
                // The selector colon comes after the '@' (the 'par:'
                // prefix owns any earlier colon).
                const std::size_t at_pos = spec.find('@');
                const std::size_t sel_pos =
                    at_pos == std::string::npos
                        ? std::string::npos
                        : spec.find(':', at_pos);
                if (sel_pos != std::string::npos) {
                    if (!parseShard(spec.substr(sel_pos + 1), sel.rem,
                                    sel.mod)) {
                        cli.error = "bad fault selector in '" + item +
                            "' (want :K/M with K < M)";
                        return cli;
                    }
                    spec = spec.substr(0, sel_pos);
                }
                if (!parseFaultSpec(spec, sel.plan, cli.error))
                    return cli;
                cli.faults.push_back(sel);
            }
        } else {
            cli.error = "unknown flag '--" + key + "'";
            return cli;
        }
    }

    if (!cli.journalFile.empty() && !cli.resumeFile.empty()) {
        cli.error = "--journal and --resume are mutually exclusive "
                    "(--resume already appends to its journal)";
        return cli;
    }
    if (cli.grid.sockets.empty()) {
        cli.error = "empty socket list";
        return cli;
    }
    if (cli.grid.dramCacheMb.empty()) {
        cli.error = "empty dram-cache-mb list";
        return cli;
    }
    if (cli.grid.mappings.empty()) {
        cli.error = "empty mapping list";
        return cli;
    }
    if (cli.quick)
        cli.grid = exp::quickPreset(std::move(cli.grid));
    return cli;
}

MergeCli
parseMergeCli(int argc, char **argv)
{
    MergeCli cli;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            cli.journals.push_back(arg);
            continue;
        }
        std::string key, value;
        if (!splitFlag(argv[i], key, value)) {
            cli.error = "unexpected argument '" + arg + "'";
            return cli;
        }
        if (key == "help") {
            cli.showHelp = true;
        } else if (key == "format") {
            if (value != "json" && value != "csv" &&
                value != "table") {
                cli.error = "unknown format '" + value + "'";
                return cli;
            }
            cli.format = value;
        } else if (key == "out") {
            cli.outFile = value;
        } else {
            cli.error = "unknown flag '--" + key + "'";
            return cli;
        }
    }
    if (cli.journals.empty() && !cli.showHelp)
        cli.error = "merge needs at least one journal file";
    return cli;
}

void
printHumanTable(const exp::ResultTable &table)
{
    std::printf("%-16s %-14s %-13s %-4s %3s %8s %10s %8s %8s\n",
                "workload", "variant", "design", "map", "skt",
                "dcache", "ticks", "ipc", "remote%");
    for (const exp::ResultRow &r : table.rows()) {
        const double remote_pct = r.metrics.memAccesses()
            ? 100.0 *
                static_cast<double>(r.metrics.remoteMemAccesses()) /
                static_cast<double>(r.metrics.memAccesses())
            : 0.0;
        std::printf("%-16s %-14s %-13s %-4s %3u %7lluM %10llu %8.3f "
                    "%7.1f%%\n",
                    r.workload.c_str(), r.variant.c_str(),
                    r.design.c_str(), r.mapping.c_str(), r.sockets,
                    static_cast<unsigned long long>(r.dramCacheMb),
                    static_cast<unsigned long long>(
                        r.metrics.measuredTicks),
                    r.metrics.ipc(), remote_pct);
    }
}

/** Emit @p table in @p format to @p out_file or stdout. */
int
emitTable(const exp::ResultTable &table, const std::string &format,
          const std::string &out_file)
{
    std::string payload;
    if (format == "json")
        payload = table.toJson();
    else if (format == "csv")
        payload = table.toCsv();

    if (!out_file.empty()) {
        std::ofstream out(out_file, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "c3d-sweep: cannot write '%s'\n",
                         out_file.c_str());
            return 1;
        }
        out << payload;
        return 0;
    }

    if (format == "table")
        printHumanTable(table);
    else
        std::fputs(payload.c_str(), stdout);
    return 0;
}

int
runMerge(int argc, char **argv)
{
    const MergeCli cli = parseMergeCli(argc, argv);
    if (cli.showHelp) {
        std::fputs(Usage, stdout);
        return 0;
    }
    if (!cli.error.empty()) {
        std::fprintf(stderr, "c3d-sweep: %s\n%s", cli.error.c_str(),
                     Usage);
        return 2;
    }
    if (cli.format == "table" && !cli.outFile.empty()) {
        std::fprintf(stderr,
                     "c3d-sweep: --format=table writes to stdout "
                     "only\n");
        return 2;
    }

    std::vector<exp::JournalData> parts;
    std::string error;
    for (const std::string &path : cli.journals) {
        exp::JournalData data;
        if (!exp::readJournalFile(path, data, error)) {
            std::fprintf(stderr, "c3d-sweep: %s\n", error.c_str());
            return 1;
        }
        if (data.truncatedTail)
            std::fprintf(stderr,
                         "c3d-sweep: warning: '%s' ends in a "
                         "truncated line (dropped)\n",
                         path.c_str());
        parts.push_back(std::move(data));
    }

    exp::ResultTable table;
    if (!exp::mergeJournals(parts, table, error)) {
        std::fprintf(stderr, "c3d-sweep: %s\n", error.c_str());
        return 1;
    }
    return emitTable(table, cli.format, cli.outFile);
}

// Written by the SIGINT/SIGTERM handler (the signal number), read
// by every worker's stop check: must be a lock-free atomic, which
// is both thread-safe and async-signal-safe. Journal write failures
// stop the sweep through the separate g_journalStop flag so they
// cannot masquerade as an interruption (different exit code).
std::atomic<int> g_signal{0};
std::atomic<int> g_journalStop{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free flag");

void
onSignal(int sig)
{
    g_signal.store(sig);
}

// Last-ditch journal flush when the process dies non-cooperatively:
// an uncaught exception (std::terminate) or an abort from a
// non-contained code path. Every append already fsync'd its line,
// so this is belt-and-braces for bytes buffered mid-append -- the
// journal reader recovers from a torn tail either way.
exp::JournalWriter *g_journal = nullptr;

void
onAbort(int)
{
    if (g_journal)
        g_journal->crashFlush();
    // abort() restores the default disposition and re-raises after
    // a handler returns, so the process still dies with SIGABRT.
}

[[noreturn]] void
onTerminate()
{
    if (const std::exception_ptr e = std::current_exception()) {
        try {
            std::rethrow_exception(e);
        } catch (const std::exception &ex) {
            std::fprintf(stderr,
                         "c3d-sweep: terminating on uncaught "
                         "exception: %s\n",
                         ex.what());
        } catch (...) {
            std::fprintf(stderr,
                         "c3d-sweep: terminating on uncaught "
                         "exception\n");
        }
    }
    if (g_journal)
        g_journal->crashFlush();
    std::signal(SIGABRT, SIG_DFL);
    std::abort();
}

bool
fileExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f)
        std::fclose(f);
    return f != nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "merge") == 0)
        return runMerge(argc, argv);

    const SweepCli cli = parseSweepCli(argc, argv);
    if (cli.showHelp) {
        std::fputs(Usage, stdout);
        return 0;
    }
    if (!cli.error.empty()) {
        std::fprintf(stderr, "c3d-sweep: %s\n%s", cli.error.c_str(),
                     Usage);
        return 2;
    }
    if (cli.format == "table" && !cli.outFile.empty()) {
        std::fprintf(stderr,
                     "c3d-sweep: --format=table writes to stdout "
                     "only\n");
        return 2;
    }

    setQuiet(true);
    exp::SweepEngine engine(cli.jobs);
    RunOptions baseOpts;
    baseOpts.kernel = cli.kernel;
    baseOpts.watchdog = cli.watchdog;
    engine.setRunOptions(baseOpts);
    engine.setFailPolicy(cli.failPolicy, cli.retryCount);
    engine.setShard(cli.shardIdx, cli.shardCnt);
    if (cli.progress) {
        engine.setProgress([](const exp::RunSpec &spec,
                              std::size_t done, std::size_t total) {
            std::fprintf(stderr, "[%zu/%zu] %s %s\n", done, total,
                         spec.profile.name.c_str(),
                         designName(spec.cfg.design));
        });
    }

    // Checkpointing: validate/open the journal before running.
    const std::vector<exp::RunSpec> specs = cli.grid.expand();
    const std::string fingerprint = exp::gridFingerprint(specs);
    exp::JournalWriter writer;
    std::string error;
    std::size_t resumed_rows = 0;

    // --resume treats a journal holding at most a torn header (no
    // complete newline-terminated line, content a prefix of our
    // header) as absent: such a file cannot hold any fsync'd row,
    // only a crash that beat the header to disk, and must not
    // brick an unconditional cron-style --resume loop. Anything
    // else aborts rather than risk overwriting real data: an
    // unreadable file (transient I/O, permissions) or newline-free
    // content that is not our header (a mistyped path).
    std::string resume_text;
    exp::ReadFile resume_read = exp::ReadFile::Absent;
    if (!cli.resumeFile.empty()) {
        resume_read =
            exp::readTextFile(cli.resumeFile, resume_text, error);
        if (resume_read == exp::ReadFile::Error) {
            std::fprintf(stderr, "c3d-sweep: %s\n", error.c_str());
            return 1;
        }
    }
    const bool resume_no_newline =
        resume_text.find('\n') == std::string::npos;
    if (resume_read == exp::ReadFile::Ok && resume_no_newline &&
        !resume_text.empty()) {
        const std::string header_start =
            std::string("{\"schema\": \"") +
            exp::journalSchemaName() + "\"";
        const std::size_t n =
            std::min(resume_text.size(), header_start.size());
        if (resume_text.compare(0, n, header_start, 0, n) != 0) {
            std::fprintf(stderr,
                         "c3d-sweep: '%s' is not a sweep journal; "
                         "refusing to overwrite it\n",
                         cli.resumeFile.c_str());
            return 1;
        }
    }
    const bool resume_fresh =
        resume_read != exp::ReadFile::Ok || resume_no_newline;

    if (!cli.resumeFile.empty() && !resume_fresh) {
        exp::JournalData data;
        if (!exp::parseJournal(resume_text, data, error)) {
            std::fprintf(stderr, "c3d-sweep: %s: %s\n",
                         cli.resumeFile.c_str(), error.c_str());
            return 1;
        }
        if (data.total != specs.size() ||
            data.fingerprint != fingerprint) {
            std::fprintf(stderr,
                         "c3d-sweep: journal '%s' was written by a "
                         "different grid (specs: %zu here vs %llu "
                         "journaled; fingerprint: %s here vs %s "
                         "journaled)\n",
                         cli.resumeFile.c_str(), specs.size(),
                         static_cast<unsigned long long>(data.total),
                         fingerprint.c_str(),
                         data.fingerprint.c_str());
            return 1;
        }
        std::unordered_map<std::size_t, exp::ResultRow> pre;
        std::size_t resumed_failures = 0;
        for (exp::JournalEntry &entry : data.entries) {
            const std::size_t i =
                static_cast<std::size_t>(entry.index);
            const std::string key = entry.failed
                ? entry.failure.identity
                : entry.row.identityKey();
            if (i >= specs.size() ||
                key != exp::specIdentityKey(specs[i])) {
                std::fprintf(stderr,
                             "c3d-sweep: journal '%s' %s for grid "
                             "point %zu does not match this grid\n",
                             cli.resumeFile.c_str(),
                             entry.failed ? "failure record" : "row",
                             i);
                return 1;
            }
            if (entry.failed) {
                // Failed grid points are not prefilled: the resume
                // re-runs them (with the fault fixed or the
                // injection flag dropped, the clean row lands and
                // supersedes the journaled failure).
                ++resumed_failures;
                continue;
            }
            pre.emplace(i, std::move(entry.row));
        }
        if (resumed_failures) {
            std::fprintf(stderr,
                         "c3d-sweep: note: re-running %zu grid "
                         "point(s) the journal recorded as failed\n",
                         resumed_failures);
        }
        if (data.truncatedTail)
            std::fprintf(stderr,
                         "c3d-sweep: note: dropped a truncated "
                         "trailing journal line; that grid point "
                         "re-runs\n");
        resumed_rows = pre.size();
        engine.setPrefilled(std::move(pre));
        if (!writer.openAppend(cli.resumeFile, error)) {
            std::fprintf(stderr, "c3d-sweep: %s\n", error.c_str());
            return 1;
        }
    } else if (!cli.resumeFile.empty()) {
        if (resume_read == exp::ReadFile::Ok &&
            !resume_text.empty())
            std::fprintf(stderr,
                         "c3d-sweep: note: '%s' has no complete "
                         "journal line; starting it fresh\n",
                         cli.resumeFile.c_str());
        if (!writer.create(cli.resumeFile, specs.size(), fingerprint,
                           error)) {
            std::fprintf(stderr, "c3d-sweep: %s\n", error.c_str());
            return 1;
        }
    } else if (!cli.journalFile.empty()) {
        // Exclusive create: refusing an existing file atomically
        // means two processes handed the same --journal path can
        // never interleave writes into one corrupt file.
        if (!writer.create(cli.journalFile, specs.size(), fingerprint,
                           error, /*exclusive=*/true)) {
            if (fileExists(cli.journalFile))
                std::fprintf(stderr,
                             "c3d-sweep: journal '%s' already "
                             "exists (use --resume=%s to continue "
                             "it)\n",
                             cli.journalFile.c_str(),
                             cli.journalFile.c_str());
            else
                std::fprintf(stderr, "c3d-sweep: %s\n",
                             error.c_str());
            return 1;
        }
    }

    const std::string journal_path = !cli.resumeFile.empty()
        ? cli.resumeFile : cli.journalFile;
    std::size_t journaled_rows = 0;
    std::string journal_error;
    if (writer.isOpen()) {
        // A journaled sweep is interruptible: SIGINT and SIGTERM
        // (the batch scheduler's kill) stop workers from claiming
        // new grid points, in-flight rows still land in the
        // journal, and --resume continues later. The terminate and
        // abort hooks flush the journal before the process dies
        // non-cooperatively.
        g_journal = &writer;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::signal(SIGABRT, onAbort);
        std::set_terminate(onTerminate);
        engine.setStopRequest([] {
            return g_signal.load() != 0 || g_journalStop.load() != 0;
        });
        engine.setRowSink([&](const exp::RunSpec &spec,
                              const exp::ResultRow &row) {
            if (!journal_error.empty())
                return;
            if (!writer.append(spec.index, row, journal_error))
                g_journalStop = 1; // stop claiming new specs
            else
                ++journaled_rows;
        });
    }

    // Unrecovered failures, for the manifest (and exit code 3).
    std::vector<exp::RowFailure> failures;
    engine.setFailureSink([&](const exp::RowFailure &f) {
        if (writer.isOpen() && journal_error.empty()) {
            exp::JournalFailure jf;
            jf.identity = f.identity;
            jf.error = f.error;
            jf.tick = f.tick;
            jf.tickKnown = f.tickKnown;
            jf.attempts = f.attempts;
            if (!writer.appendFailure(f.index, jf, journal_error))
                g_journalStop = 1;
        }
        if (f.recovered) {
            std::fprintf(stderr,
                         "c3d-sweep: note: grid point %zu recovered "
                         "on attempt %u%s\n",
                         f.index, f.attempts,
                         f.degraded
                             ? " (degraded to the sequential kernel)"
                             : "");
        } else {
            failures.push_back(f);
        }
    });

    // Every run goes through an explicit run function so each grid
    // point gets its own fault plan; the retry function degrades to
    // the sequential MultiQueue-1 oracle with the same plan (so
    // par:-gated faults vanish and deterministic ones reproduce).
    const auto planFor = [&cli](std::size_t index) -> FaultPlan {
        for (const FaultSel &sel : cli.faults) {
            if (index % sel.mod == sel.rem)
                return sel.plan;
        }
        return FaultPlan{};
    };
    const auto runSpec = [&](const exp::RunSpec &spec) {
        RunOptions o = baseOpts;
        o.fault = planFor(spec.index);
        return exp::SweepEngine::simulateSpec(spec, o);
    };
    engine.setRetryFn([&](const exp::RunSpec &spec) {
        RunOptions o = baseOpts;
        o.kernel = KernelOptions{};
        o.fault = planFor(spec.index);
        return exp::SweepEngine::simulateSpec(spec, o);
    });

    exp::ResultTable table;
    try {
        table = engine.run(cli.grid, runSpec);
    } catch (const std::exception &e) {
        // FailPolicy::Abort rethrows the first contained failure
        // after the pool joins; completed rows are already safe in
        // the journal.
        std::fprintf(stderr, "c3d-sweep: grid point failed: %s\n",
                     e.what());
        if (writer.isOpen()) {
            std::fprintf(stderr,
                         "c3d-sweep: rows completed before the "
                         "failure are checkpointed in '%s'; fix the "
                         "cause and continue with --resume=%s, or "
                         "contain failures with --fail-policy=skip\n",
                         journal_path.c_str(), journal_path.c_str());
        }
        return 1;
    }

    if (!journal_error.empty()) {
        std::fprintf(stderr, "c3d-sweep: %s\n",
                     journal_error.c_str());
        return 1;
    }
    if (const int sig = g_signal.load()) {
        std::fprintf(stderr,
                     "c3d-sweep: stopped by %s; %zu rows "
                     "checkpointed in '%s'; continue with "
                     "--resume=%s\n",
                     sig == SIGTERM ? "SIGTERM" : "SIGINT",
                     resumed_rows + journaled_rows,
                     journal_path.c_str(), journal_path.c_str());
        return 128 + sig;
    }
    if (!failures.empty()) {
        // Deterministic manifest: grid order, not completion order.
        std::sort(failures.begin(), failures.end(),
                  [](const exp::RowFailure &a,
                     const exp::RowFailure &b) {
                      return a.index < b.index;
                  });
        std::fprintf(stderr,
                     "c3d-sweep: %zu of %zu grid points failed "
                     "(contained):\n",
                     failures.size(), specs.size());
        for (const exp::RowFailure &f : failures) {
            char tick[48] = "";
            if (f.tickKnown) {
                std::snprintf(tick, sizeof(tick),
                              "tick %llu, ",
                              static_cast<unsigned long long>(
                                  f.tick));
            }
            std::fprintf(stderr, "  [%zu] %s: %s (%s%u attempt%s)\n",
                         f.index, f.identity.c_str(),
                         f.error.c_str(), tick, f.attempts,
                         f.attempts == 1 ? "" : "s");
        }
        if (writer.isOpen()) {
            std::fprintf(stderr,
                         "c3d-sweep: failures are journaled; re-run "
                         "them with --resume=%s\n",
                         journal_path.c_str());
        }
        const int rc = emitTable(table, cli.format, cli.outFile);
        return rc ? rc : 3;
    }
    return emitTable(table, cli.format, cli.outFile);
}
