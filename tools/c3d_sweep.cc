/**
 * @file
 * c3d-sweep: declarative parameter-sweep CLI over the experiment
 * engine.
 *
 * Expands a grid of protocol x sockets x DRAM-cache capacity x
 * mapping x workload points, executes the runs on a worker pool, and
 * emits the result table as JSON (default), CSV, or a human table.
 * Rows are ordered by grid expansion, never by completion, so output
 * is byte-identical for any --jobs value.
 *
 * Examples:
 *   c3d-sweep --designs=baseline,c3d --workloads=facesim,canneal
 *   c3d-sweep --workloads=all --sockets=2,4 --jobs=8 --format=csv
 *   c3d-sweep --designs=c3d --dram-cache-mb=256,512,1024 --out=r.json
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/log.hh"
#include "exp/sweep_engine.hh"

namespace
{

using namespace c3d;

const char *const Usage =
    "c3d-sweep: run a declarative design-space sweep\n"
    "\n"
    "grid axes (comma-separated lists):\n"
    "  --designs=A,B          baseline|snoopy|full-dir|c3d|"
    "c3d-full-dir (default c3d)\n"
    "  --workloads=A,B|all    paper profile names (default facesim);\n"
    "                         'all' = the nine parallel profiles\n"
    "  --sockets=N,M          socket counts (default 4)\n"
    "  --dram-cache-mb=N,M    unscaled DRAM-cache MB; 0 = default 1 GB\n"
    "  --mappings=P,Q         INT|FT1|FT2 (default FT2)\n"
    "\n"
    "run parameters:\n"
    "  --cores-per-socket=N   0 = paper rule: 16 on 2-socket, else 8\n"
    "  --scale=N              capacity/footprint shrink (default 32)\n"
    "  --warmup=N             refs/core before the window (0 = auto)\n"
    "  --measure=N            refs/core measured (default 25000)\n"
    "  --seed=N               override every profile's RNG seed\n"
    "  --quick                tiny grid preset for smoke runs\n"
    "\n"
    "execution and output:\n"
    "  --jobs=N               worker threads (default 1; 0 = all cores)\n"
    "  --format=json|csv|table   (default json)\n"
    "  --out=FILE             write to FILE instead of stdout\n"
    "  --progress             report per-run progress on stderr\n"
    "  --help\n";

struct SweepCli
{
    exp::SweepGrid grid;
    unsigned jobs = 1;
    std::string format = "json";
    std::string outFile;
    bool progress = false;
    bool quick = false;
    bool showHelp = false;
    std::string error;
};

bool
parseWorkloads(const std::string &value,
               std::vector<WorkloadProfile> &out, std::string &error)
{
    out.clear();
    for (const std::string &name : splitList(value)) {
        if (name == "all") {
            for (const WorkloadProfile &p : parallelProfiles())
                out.push_back(p);
        } else if (name == "mcf") {
            out.push_back(mcfProfile());
        } else {
            bool known = false;
            for (const WorkloadProfile &p : parallelProfiles()) {
                if (p.name == name) {
                    out.push_back(p);
                    known = true;
                    break;
                }
            }
            if (!known) {
                error = "unknown workload '" + name + "'";
                return false;
            }
        }
    }
    if (out.empty()) {
        error = "empty workload list";
        return false;
    }
    return true;
}

SweepCli
parseSweepCli(int argc, char **argv)
{
    SweepCli cli;
    cli.grid.workloads = {profileByName("facesim")};

    for (int i = 1; i < argc; ++i) {
        std::string key, value;
        if (!splitFlag(argv[i], key, value)) {
            cli.error = std::string("unexpected argument '") +
                argv[i] + "'";
            return cli;
        }
        std::uint64_t n = 0;
        if (key == "help") {
            cli.showHelp = true;
        } else if (key == "designs") {
            cli.grid.designs.clear();
            for (const std::string &name : splitList(value)) {
                Design d;
                if (!parseDesign(name, d)) {
                    cli.error = "unknown design '" + name + "'";
                    return cli;
                }
                cli.grid.designs.push_back(d);
            }
            if (cli.grid.designs.empty()) {
                cli.error = "empty design list";
                return cli;
            }
        } else if (key == "workloads") {
            if (!parseWorkloads(value, cli.grid.workloads, cli.error))
                return cli;
        } else if (key == "sockets") {
            cli.grid.sockets.clear();
            for (const std::string &item : splitList(value)) {
                if (!parseU64(item, n) || n < 1 || n > 8) {
                    cli.error = "bad socket count '" + item + "'";
                    return cli;
                }
                cli.grid.sockets.push_back(
                    static_cast<std::uint32_t>(n));
            }
        } else if (key == "dram-cache-mb") {
            cli.grid.dramCacheMb.clear();
            for (const std::string &item : splitList(value)) {
                if (!parseU64(item, n)) {
                    cli.error = "bad dram-cache-mb '" + item + "'";
                    return cli;
                }
                cli.grid.dramCacheMb.push_back(n);
            }
        } else if (key == "mappings") {
            cli.grid.mappings.clear();
            for (const std::string &item : splitList(value)) {
                MappingPolicy p;
                if (!parseMapping(item, p)) {
                    cli.error = "unknown mapping '" + item + "'";
                    return cli;
                }
                cli.grid.mappings.push_back(p);
            }
        } else if (key == "cores-per-socket") {
            if (!parseU64(value, n) || n > 64) {
                cli.error = "bad cores-per-socket";
                return cli;
            }
            cli.grid.coresPerSocket = static_cast<std::uint32_t>(n);
        } else if (key == "scale") {
            if (!parseU64(value, n) || n < 1) {
                cli.error = "bad scale";
                return cli;
            }
            cli.grid.scale = static_cast<std::uint32_t>(n);
        } else if (key == "warmup") {
            if (!parseU64(value, cli.grid.warmupOps)) {
                cli.error = "bad warmup";
                return cli;
            }
        } else if (key == "measure") {
            if (!parseU64(value, cli.grid.measureOps) ||
                cli.grid.measureOps == 0) {
                cli.error = "bad measure";
                return cli;
            }
        } else if (key == "seed") {
            if (!parseU64(value, cli.grid.seed)) {
                cli.error = "bad seed";
                return cli;
            }
        } else if (key == "jobs") {
            if (!parseU64(value, n) || n > 256) {
                cli.error = "bad jobs";
                return cli;
            }
            cli.jobs = static_cast<unsigned>(n);
        } else if (key == "format") {
            if (value != "json" && value != "csv" &&
                value != "table") {
                cli.error = "unknown format '" + value + "'";
                return cli;
            }
            cli.format = value;
        } else if (key == "out") {
            cli.outFile = value;
        } else if (key == "progress") {
            cli.progress = true;
        } else if (key == "quick") {
            cli.quick = true;
        } else {
            cli.error = "unknown flag '--" + key + "'";
            return cli;
        }
    }

    if (cli.grid.sockets.empty()) {
        cli.error = "empty socket list";
        return cli;
    }
    if (cli.grid.dramCacheMb.empty()) {
        cli.error = "empty dram-cache-mb list";
        return cli;
    }
    if (cli.grid.mappings.empty()) {
        cli.error = "empty mapping list";
        return cli;
    }
    if (cli.quick)
        cli.grid = exp::quickPreset(std::move(cli.grid));
    return cli;
}

void
printHumanTable(const exp::ResultTable &table)
{
    std::printf("%-16s %-14s %-13s %-4s %3s %8s %10s %8s %8s\n",
                "workload", "variant", "design", "map", "skt",
                "dcache", "ticks", "ipc", "remote%");
    for (const exp::ResultRow &r : table.rows()) {
        const double remote_pct = r.metrics.memAccesses()
            ? 100.0 *
                static_cast<double>(r.metrics.remoteMemAccesses()) /
                static_cast<double>(r.metrics.memAccesses())
            : 0.0;
        std::printf("%-16s %-14s %-13s %-4s %3u %7lluM %10llu %8.3f "
                    "%7.1f%%\n",
                    r.workload.c_str(), r.variant.c_str(),
                    r.design.c_str(), r.mapping.c_str(), r.sockets,
                    static_cast<unsigned long long>(r.dramCacheMb),
                    static_cast<unsigned long long>(
                        r.metrics.measuredTicks),
                    r.metrics.ipc(), remote_pct);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const SweepCli cli = parseSweepCli(argc, argv);
    if (cli.showHelp) {
        std::fputs(Usage, stdout);
        return 0;
    }
    if (!cli.error.empty()) {
        std::fprintf(stderr, "c3d-sweep: %s\n%s", cli.error.c_str(),
                     Usage);
        return 2;
    }
    if (cli.format == "table" && !cli.outFile.empty()) {
        std::fprintf(stderr,
                     "c3d-sweep: --format=table writes to stdout "
                     "only\n");
        return 2;
    }

    setQuiet(true);
    exp::SweepEngine engine(cli.jobs);
    if (cli.progress) {
        engine.setProgress([](const exp::RunSpec &spec,
                              std::size_t done, std::size_t total) {
            std::fprintf(stderr, "[%zu/%zu] %s %s\n", done, total,
                         spec.profile.name.c_str(),
                         designName(spec.cfg.design));
        });
    }

    const exp::ResultTable table = engine.run(cli.grid);

    std::string payload;
    if (cli.format == "json")
        payload = table.toJson();
    else if (cli.format == "csv")
        payload = table.toCsv();

    if (!cli.outFile.empty()) {
        std::ofstream out(cli.outFile, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "c3d-sweep: cannot write '%s'\n",
                         cli.outFile.c_str());
            return 1;
        }
        out << payload;
        return 0;
    }

    if (cli.format == "table")
        printHumanTable(table);
    else
        std::fputs(payload.c_str(), stdout);
    return 0;
}
