/**
 * @file
 * c3d-trace: record, inspect, validate, and trim c3dsim trace files.
 *
 * The sweep engine replays traces named as `--workloads=trace:FILE`
 * (docs/traces.md); this tool produces and maintains that corpus:
 *
 *   c3d-trace record --out=FILE [--profile=NAME] [--cores=N]
 *                    [--ops=N] [--seed=N] [--scale=N]
 *                    [--cores-per-socket=N]
 *       Capture a synthetic profile's reference stream into a trace
 *       (deterministic: same flags, byte-identical file).
 *
 *   c3d-trace info FILE [--json]   header, per-core stats, content
 *                             hash; --json for machine consumption
 *   c3d-trace validate FILE   full streaming validation; exit 1 on
 *                             any defect
 *   c3d-trace truncate FILE --records=N --out=FILE2
 *       Copy the first N records into a new, valid trace.
 *   c3d-trace compose --out=MANIFEST TRACE TRACE...
 *       Materialize a multi-tenant colocation manifest: member
 *       traces pinned by content hash, seed recorded, replayable as
 *       `c3d-sweep --workloads=compose:MANIFEST` (docs/workloads.md).
 *
 * Exit status: 0 ok, 1 runtime/validation failure, 2 usage error.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/log.hh"
#include "exp/json.hh"
#include "trace/trace_file.hh"
#include "trace/workload.hh"
#include "workload/composition.hh"

namespace
{

using namespace c3d;

const char *const Usage =
    "c3d-trace: record, inspect, validate, and trim c3dsim traces\n"
    "\n"
    "subcommands:\n"
    "  record --out=FILE [--profile=NAME] [--cores=N] [--ops=N]\n"
    "         [--seed=N] [--scale=N] [--cores-per-socket=N]\n"
    "      capture a synthetic profile into a trace file\n"
    "      (--profile default facesim; --cores default 8; --ops =\n"
    "      records per core, default 10000; --seed 0 keeps the\n"
    "      profile's own seed; --scale default 256 shrinks the\n"
    "      footprint like a --quick sweep)\n"
    "  info FILE [--json]\n"
    "      print header, per-core stats, content hash; --json emits\n"
    "      one machine-readable object\n"
    "  validate FILE   streaming validation; exit 1 on any defect\n"
    "  truncate FILE --records=N --out=FILE2\n"
    "      copy the first N records into a new trace\n"
    "  compose --out=MANIFEST [--name=NAME] [--seed=N]\n"
    "          [--assign=block|interleave]\n"
    "          [--arrival=fixed|poisson|staggered]\n"
    "          [--arrival-mean-gap=N] [--stagger-gap=N]\n"
    "          [--phase-period=N] [--phase-skip=N] TRACE TRACE...\n"
    "      write a multi-tenant colocation manifest (>= 2 member\n"
    "      traces, each pinned by content hash; --phase-* apply to\n"
    "      every tenant); replay with\n"
    "      c3d-sweep --workloads=compose:MANIFEST\n";

int
usageError(const std::string &message)
{
    std::fprintf(stderr, "c3d-trace: %s\n%s", message.c_str(), Usage);
    return 2;
}

int
runRecord(int argc, char **argv)
{
    std::string profile_name = "facesim";
    std::string out;
    std::uint64_t cores = 8;
    std::uint64_t ops = 10000;
    std::uint64_t seed = 0;
    std::uint64_t scale = 256;
    std::uint64_t cores_per_socket = 0;

    for (int i = 2; i < argc; ++i) {
        std::string key, value;
        if (!splitFlag(argv[i], key, value))
            return usageError(std::string("unexpected argument '") +
                              argv[i] + "'");
        if (key == "help") {
            std::fputs(Usage, stdout);
            return 0;
        } else if (key == "profile") {
            profile_name = value;
        } else if (key == "out") {
            out = value;
        } else if (key == "cores") {
            if (!parseU64(value, cores) || cores < 1 || cores > 4096)
                return usageError("bad --cores (want 1..4096)");
        } else if (key == "ops") {
            if (!parseU64(value, ops) || ops < 1)
                return usageError("bad --ops");
        } else if (key == "seed") {
            if (!parseU64(value, seed))
                return usageError("bad --seed");
        } else if (key == "scale") {
            if (!parseU64(value, scale) || scale < 1)
                return usageError("bad --scale");
        } else if (key == "cores-per-socket") {
            if (!parseU64(value, cores_per_socket))
                return usageError("bad --cores-per-socket");
        } else {
            return usageError("unknown flag '--" + key + "'");
        }
    }
    if (out.empty())
        return usageError("record needs --out=FILE");

    WorkloadProfile profile = profileByName(profile_name);
    if (seed)
        profile.seed = seed;
    SyntheticWorkload wl(
        profile.scaled(static_cast<std::uint32_t>(scale)),
        static_cast<std::uint32_t>(cores),
        cores_per_socket ? static_cast<std::uint32_t>(cores_per_socket)
                         : 8);

    // Round-robin capture: op i of every core before op i+1 of any,
    // so the interleaving (and thus the file) is deterministic.
    const std::uint32_t active =
        wl.activeCores(static_cast<std::uint32_t>(cores));
    TraceFileWriter writer(out, active);
    for (std::uint64_t i = 0; i < ops; ++i) {
        for (std::uint32_t c = 0; c < active; ++c) {
            const TraceOp op = wl.next(c);
            TraceRecord rec;
            rec.core = static_cast<std::uint16_t>(c);
            rec.gap = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(op.gap, 0xFFFF));
            rec.op = op.op;
            rec.addr = op.addr;
            writer.append(rec);
        }
    }
    const std::uint64_t written = writer.recordsWritten();
    writer.close();

    TraceFileInfo info;
    std::string error;
    if (!scanTraceFile(out, info, error)) {
        std::fprintf(stderr,
                     "c3d-trace: recorded file fails validation: "
                     "%s\n",
                     error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "c3d-trace: wrote %" PRIu64 " records (%u cores, "
                 "profile %s) to '%s'; content hash %016" PRIx64 "\n",
                 written, active, profile.name.c_str(), out.c_str(),
                 info.contentHash);
    return 0;
}

int
runInfo(int argc, char **argv)
{
    std::string path;
    bool json = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--help") {
            std::fputs(Usage, stdout);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            return usageError("unknown flag '" + arg + "'");
        } else if (path.empty()) {
            path = arg;
        } else {
            return usageError("info takes exactly one FILE");
        }
    }
    if (path.empty())
        return usageError("info takes exactly one FILE");

    TraceFileInfo info;
    std::string error;
    if (!scanTraceFile(path, info, error)) {
        std::fprintf(stderr, "c3d-trace: %s\n", error.c_str());
        return 1;
    }

    if (json) {
        // One deterministic object: fixed key order, content hash as
        // a 16-hex-digit string (JSON numbers lose u64 precision in
        // many consumers).
        std::printf("{\n  \"file\": \"%s\",\n",
                    exp::jsonEscape(path).c_str());
        std::printf("  \"workload\": \"%s\",\n",
                    exp::jsonEscape(
                        traceWorkloadName(path, info.contentHash))
                        .c_str());
        std::printf("  \"cores\": %u,\n", info.numCores);
        std::printf("  \"records\": %" PRIu64 ",\n", info.records);
        std::printf("  \"reads\": %" PRIu64 ",\n", info.reads);
        std::printf("  \"writes\": %" PRIu64 ",\n", info.writes);
        std::printf("  \"content_hash\": \"%016" PRIx64 "\",\n",
                    info.contentHash);
        std::printf("  \"file_bytes\": %" PRIu64 ",\n",
                    info.fileBytes);
        std::printf("  \"per_core_records\": [");
        for (std::size_t c = 0; c < info.perCoreRecords.size(); ++c)
            std::printf("%s%" PRIu64, c ? ", " : "",
                        info.perCoreRecords[c]);
        std::printf("]\n}\n");
        return 0;
    }

    std::uint64_t min_recs = info.records, max_recs = 0;
    for (const std::uint64_t n : info.perCoreRecords) {
        min_recs = std::min(min_recs, n);
        max_recs = std::max(max_recs, n);
    }
    std::printf("file:         %s\n", path.c_str());
    std::printf("workload:     %s\n",
                traceWorkloadName(path, info.contentHash).c_str());
    std::printf("cores:        %u\n", info.numCores);
    std::printf("records:      %" PRIu64
                " (per core: min %" PRIu64 ", max %" PRIu64 ")\n",
                info.records, min_recs, max_recs);
    std::printf("reads/writes: %" PRIu64 " / %" PRIu64
                " (%.1f%% writes)\n",
                info.reads, info.writes,
                100.0 * static_cast<double>(info.writes) /
                    static_cast<double>(info.records));
    std::printf("content hash: %016" PRIx64 "\n", info.contentHash);
    std::printf("file bytes:   %" PRIu64 "\n", info.fileBytes);
    return 0;
}

int
runValidate(const std::string &path)
{
    TraceFileInfo info;
    std::string error;
    if (!scanTraceFile(path, info, error)) {
        std::fprintf(stderr, "c3d-trace: %s\n", error.c_str());
        return 1;
    }
    std::printf("ok: %" PRIu64 " records, %u cores, hash %016" PRIx64
                "\n",
                info.records, info.numCores, info.contentHash);
    return 0;
}

int
runTruncate(int argc, char **argv)
{
    std::string in, out;
    std::uint64_t keep = 0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            if (!in.empty())
                return usageError("truncate takes one input file");
            in = arg;
            continue;
        }
        std::string key, value;
        splitFlag(arg, key, value);
        if (key == "help") {
            std::fputs(Usage, stdout);
            return 0;
        } else if (key == "records") {
            if (!parseU64(value, keep) || keep < 1)
                return usageError("bad --records");
        } else if (key == "out") {
            out = value;
        } else {
            return usageError("unknown flag '--" + key + "'");
        }
    }
    if (in.empty() || out.empty() || keep == 0)
        return usageError(
            "truncate needs FILE, --records=N, and --out=FILE2");

    TraceFileInfo out_info;
    std::string error;
    if (!truncateTraceFile(in, out, keep, error, &out_info)) {
        std::fprintf(stderr, "c3d-trace: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "c3d-trace: wrote %" PRIu64 " records to '%s'; "
                 "content hash %016" PRIx64 "\n",
                 keep, out.c_str(), out_info.contentHash);
    return 0;
}

int
runCompose(int argc, char **argv)
{
    CompositionSpec spec;
    std::string out;
    std::uint64_t phase_period = 0, phase_skip = 0;
    std::vector<std::string> traces;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            traces.push_back(arg);
            continue;
        }
        std::string key, value;
        splitFlag(arg, key, value);
        if (key == "help") {
            std::fputs(Usage, stdout);
            return 0;
        } else if (key == "out") {
            out = value;
        } else if (key == "name") {
            spec.name = value;
        } else if (key == "seed") {
            if (!parseU64(value, spec.seed))
                return usageError("bad --seed");
        } else if (key == "assign") {
            if (!parseAssignPolicy(value, spec.assignment))
                return usageError(
                    "bad --assign (want block|interleave)");
        } else if (key == "arrival") {
            if (!parseArrivalProcess(value, spec.arrival))
                return usageError(
                    "bad --arrival (want fixed|poisson|staggered)");
        } else if (key == "arrival-mean-gap") {
            if (!parseU64(value, spec.arrivalMeanGap))
                return usageError("bad --arrival-mean-gap");
        } else if (key == "stagger-gap") {
            if (!parseU64(value, spec.staggerGap))
                return usageError("bad --stagger-gap");
        } else if (key == "phase-period") {
            if (!parseU64(value, phase_period))
                return usageError("bad --phase-period");
        } else if (key == "phase-skip") {
            if (!parseU64(value, phase_skip))
                return usageError("bad --phase-skip");
        } else {
            return usageError("unknown flag '--" + key + "'");
        }
    }
    if (out.empty())
        return usageError("compose needs --out=MANIFEST");
    if (traces.size() < 2)
        return usageError(
            "compose needs at least two member TRACE files");
    if (phase_skip && !phase_period)
        return usageError("--phase-skip needs --phase-period");
    if (spec.arrival == ArrivalProcess::Poisson &&
        spec.arrivalMeanGap == 0)
        return usageError("--arrival=poisson needs "
                          "--arrival-mean-gap");
    if (spec.arrival == ArrivalProcess::Staggered &&
        spec.staggerGap == 0)
        return usageError("--arrival=staggered needs --stagger-gap");

    std::string error;
    for (const std::string &trace : traces) {
        // Same guard as truncate: writing the manifest over a member
        // would clobber the trace being pinned.
        if (sameFileTarget(trace, out)) {
            std::fprintf(stderr,
                         "c3d-trace: refusing --out='%s': it names "
                         "member trace '%s'\n",
                         out.c_str(), trace.c_str());
            return 1;
        }
        TenantSpec tenant;
        tenant.tracePath = trace;
        tenant.phasePeriodOps = phase_period;
        tenant.phaseSkipOps = phase_skip;
        TraceFileInfo info;
        if (!scanTraceFile(trace, info, error)) {
            std::fprintf(stderr, "c3d-trace: %s\n", error.c_str());
            return 1;
        }
        tenant.traceHash = info.contentHash;
        spec.tenants.push_back(std::move(tenant));
    }

    const std::string text = compositionToJson(spec);
    std::FILE *f = std::fopen(out.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr,
                     "c3d-trace: cannot open '%s' for writing\n",
                     out.c_str());
        return 1;
    }
    const bool wrote =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    if (std::fclose(f) != 0 || !wrote) {
        std::fprintf(stderr, "c3d-trace: writing '%s' failed\n",
                     out.c_str());
        std::remove(out.c_str());
        return 1;
    }

    // Revalidate through the real loader (member paths resolve
    // against the manifest's directory, so a manifest written away
    // from its members with relative paths fails here, not at sweep
    // time); a manifest that cannot load back is not kept.
    CompositionSpec checked;
    if (!loadComposition(out, checked, error)) {
        std::fprintf(stderr,
                     "c3d-trace: written manifest fails validation "
                     "(%s); not keeping '%s'\n",
                     error.c_str(), out.c_str());
        std::remove(out.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "c3d-trace: wrote composition '%s' (%zu tenants, "
                 "workload %s) to '%s'\n",
                 checked.name.c_str(), checked.tenants.size(),
                 compositionWorkloadName(
                     out, compositionHashOf(checked))
                     .c_str(),
                 out.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    if (argc < 2)
        return usageError("missing subcommand");
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "help") {
        std::fputs(Usage, stdout);
        return 0;
    }
    if (cmd == "record")
        return runRecord(argc, argv);
    if (cmd == "info")
        return runInfo(argc, argv);
    if (cmd == "validate") {
        if (argc != 3)
            return usageError("validate takes exactly one FILE");
        return runValidate(argv[2]);
    }
    if (cmd == "truncate")
        return runTruncate(argc, argv);
    if (cmd == "compose")
        return runCompose(argc, argv);
    return usageError("unknown subcommand '" + cmd + "'");
}
